//! Thin singular value decomposition via the one-sided Jacobi method.
//!
//! The SVD / SVD-masked baselines of the paper (§V-B) reduce the data to a
//! low-rank representation via truncated SVD. One-sided Jacobi is simple,
//! `O(m n^2)` per sweep, and delivers high relative accuracy for the tall
//! matrices (records x attributes) used in this workspace.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Thin SVD `A = U diag(S) V^T` with singular values sorted descending.
#[derive(Debug, Clone)]
pub struct Svd {
    /// `m x n` matrix with orthonormal columns (left singular vectors).
    pub u: Matrix,
    /// Singular values, descending, length `n`.
    pub s: Vec<f64>,
    /// `n x n` orthogonal matrix (right singular vectors as columns).
    pub v: Matrix,
}

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 60;

impl Svd {
    /// Computes the thin SVD of `a`.
    ///
    /// For wide inputs (`m < n`) the transpose is decomposed internally and
    /// the factors are swapped back, so any shape is accepted.
    pub fn decompose(a: &Matrix) -> Result<Svd, LinalgError> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidDimensions(
                "cannot decompose an empty matrix".into(),
            ));
        }
        if m < n {
            // Decompose the transpose and swap U <-> V.
            let svd_t = Svd::decompose(&a.transpose())?;
            return Ok(Svd {
                u: svd_t.v,
                s: svd_t.s,
                v: svd_t.u,
            });
        }
        // One-sided Jacobi: orthogonalize the columns of a working copy W by
        // Givens rotations applied on the right; accumulate them into V.
        let mut w = a.clone();
        let mut v = Matrix::identity(n);
        let tol = 1e-14;
        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0_f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries for the column pair (p, q).
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let wp = w.get(i, p);
                        let wq = w.get(i, q);
                        app += wp * wp;
                        aqq += wq * wq;
                        apq += wp * wq;
                    }
                    if apq.abs() <= tol * (app * aqq).sqrt() || apq == 0.0 {
                        continue;
                    }
                    off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));
                    // Jacobi rotation annihilating the (p,q) Gram entry.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let wp = w.get(i, p);
                        let wq = w.get(i, q);
                        w.set(i, p, c * wp - s * wq);
                        w.set(i, q, s * wp + c * wq);
                    }
                    for i in 0..n {
                        let vp = v.get(i, p);
                        let vq = v.get(i, q);
                        v.set(i, p, c * vp - s * vq);
                        v.set(i, q, s * vp + c * vq);
                    }
                }
            }
            if off < 1e-12 {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(LinalgError::NoConvergence {
                algorithm: "one-sided Jacobi SVD",
                iterations: MAX_SWEEPS,
            });
        }
        // Column norms of W are the singular values; normalized columns are U.
        let mut order: Vec<(f64, usize)> = (0..n)
            .map(|j| {
                let norm = (0..m).map(|i| w.get(i, j).powi(2)).sum::<f64>().sqrt();
                (norm, j)
            })
            .collect();
        order.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut u = Matrix::zeros(m, n);
        let mut s = Vec::with_capacity(n);
        let mut v_sorted = Matrix::zeros(n, n);
        for (out_j, &(norm, j)) in order.iter().enumerate() {
            s.push(norm);
            if norm > 1e-300 {
                for i in 0..m {
                    u.set(i, out_j, w.get(i, j) / norm);
                }
            }
            for i in 0..n {
                v_sorted.set(i, out_j, v.get(i, j));
            }
        }
        Ok(Svd { u, s, v: v_sorted })
    }

    /// Rank-`k` truncation: returns `(U_k, S_k, V_k)` with the leading `k`
    /// singular triplets (`k` is clamped to the available rank).
    pub fn truncate(&self, k: usize) -> (Matrix, Vec<f64>, Matrix) {
        let k = k.min(self.s.len());
        let idx: Vec<usize> = (0..k).collect();
        (
            self.u.select_cols(&idx),
            self.s[..k].to_vec(),
            self.v.select_cols(&idx),
        )
    }

    /// Reconstructs the best rank-`k` approximation `U_k diag(S_k) V_k^T`.
    pub fn reconstruct(&self, k: usize) -> Matrix {
        let (u, s, v) = self.truncate(k);
        // U * diag(s)
        let mut us = u;
        for i in 0..us.rows() {
            let row = us.row_mut(i);
            for (x, &sv) in row.iter_mut().zip(&s) {
                *x *= sv;
            }
        }
        us.matmul(&v.transpose())
    }

    /// Projects `a` onto the leading `k` right singular vectors: `A V_k`.
    ///
    /// This is the "transformed data by dimensionality reduction via SVD"
    /// used as a baseline representation in the paper.
    pub fn project(&self, a: &Matrix, k: usize) -> Matrix {
        let k = k.min(self.s.len());
        let idx: Vec<usize> = (0..k).collect();
        a.matmul(&self.v.select_cols(&idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_matrix_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        assert!(
            a.sub(b).unwrap().max_abs() < tol,
            "matrices differ by more than {tol}"
        );
    }

    #[test]
    fn diagonal_matrix_has_its_diagonal_as_singular_values() {
        let a = Matrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        let svd = Svd::decompose(&a).unwrap();
        assert!((svd.s[0] - 4.0).abs() < 1e-10);
        assert!((svd.s[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_full_rank() {
        let a = Matrix::from_rows(vec![
            vec![1.0, 2.0, 0.5],
            vec![3.0, -1.0, 2.0],
            vec![0.0, 4.0, 1.0],
            vec![2.0, 2.0, -3.0],
        ])
        .unwrap();
        let svd = Svd::decompose(&a).unwrap();
        let rec = svd.reconstruct(3);
        assert_matrix_close(&rec, &a, 1e-9);
    }

    #[test]
    fn u_and_v_are_orthonormal() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let svd = Svd::decompose(&a).unwrap();
        let utu = svd.u.transpose().matmul(&svd.u);
        assert_matrix_close(&utu, &Matrix::identity(2), 1e-9);
        let vtv = svd.v.transpose().matmul(&svd.v);
        assert_matrix_close(&vtv, &Matrix::identity(2), 1e-9);
    }

    #[test]
    fn singular_values_sorted_descending() {
        let a = Matrix::from_rows(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ])
        .unwrap();
        let svd = Svd::decompose(&a).unwrap();
        assert!(svd.s.windows(2).all(|w| w[0] >= w[1]));
        assert!((svd.s[0] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn rank_one_matrix() {
        // Outer product => rank 1: second singular value ~ 0.
        let a = Matrix::from_rows(vec![vec![2.0, 4.0], vec![1.0, 2.0], vec![3.0, 6.0]]).unwrap();
        let svd = Svd::decompose(&a).unwrap();
        assert!(svd.s[1] < 1e-10);
        let rec = svd.reconstruct(1);
        assert_matrix_close(&rec, &a, 1e-9);
    }

    #[test]
    fn wide_matrix_via_transpose() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let svd = Svd::decompose(&a).unwrap();
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.s.len(), 2);
        assert_eq!(svd.v.shape(), (3, 2));
        let rec = svd.reconstruct(2);
        assert_matrix_close(&rec, &a, 1e-9);
    }

    #[test]
    fn truncation_error_decreases_with_rank() {
        let a = Matrix::from_fn(6, 4, |i, j| {
            ((i + 1) * (j + 2)) as f64 + (i as f64 * 0.3).sin()
        });
        let svd = Svd::decompose(&a).unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let err = svd.reconstruct(k).sub(&a).unwrap().frobenius_norm();
            assert!(err <= prev + 1e-12, "error must not increase with rank");
            prev = err;
        }
        assert!(prev < 1e-8, "full-rank reconstruction should be exact");
    }

    #[test]
    fn truncation_error_matches_tail_singular_values() {
        // Eckart–Young: ||A - A_k||_F^2 = sum of squared tail singular values.
        let a = Matrix::from_fn(5, 3, |i, j| (i as f64 - j as f64 * 1.7).cos());
        let svd = Svd::decompose(&a).unwrap();
        let err = svd.reconstruct(1).sub(&a).unwrap().frobenius_norm();
        let tail: f64 = svd.s[1..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((err - tail).abs() < 1e-9);
    }

    #[test]
    fn project_shape() {
        let a = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        let svd = Svd::decompose(&a).unwrap();
        let p = svd.project(&a, 2);
        assert_eq!(p.shape(), (5, 2));
    }

    #[test]
    fn empty_matrix_rejected() {
        // A 0x0 matrix cannot be constructed via from_rows, but zeros can.
        let a = Matrix::zeros(0, 0);
        assert!(Svd::decompose(&a).is_err());
    }
}
