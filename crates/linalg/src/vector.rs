//! Vector kernels used in hot loops throughout the workspace.
//!
//! All functions operate on plain `&[f64]` slices so callers can pass matrix
//! rows, `Vec`s, or array references without conversion.

/// Dot product of two equal-length slices.
///
/// Panics in debug builds when lengths differ; in release builds the shorter
/// length wins (standard `zip` semantics), so callers must uphold the
/// contract.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Infinity norm (largest absolute value).
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_euclidean: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// In-place `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x *= alpha`.
#[inline]
pub fn scale_in_place(x: &mut [f64], alpha: f64) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Element-wise difference `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Numerically stable softmax of `z` (subtracts the maximum before
/// exponentiating). Returns a probability vector summing to 1.
pub fn softmax(z: &[f64]) -> Vec<f64> {
    if z.is_empty() {
        return Vec::new();
    }
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    if sum == 0.0 || !sum.is_finite() {
        // Degenerate input (all -inf or NaN): fall back to uniform.
        return vec![1.0 / z.len() as f64; z.len()];
    }
    exps.into_iter().map(|e| e / sum).collect()
}

/// Indices that would sort `a` descending (ties broken by index, stable).
pub fn argsort_desc(a: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| {
        a[j].partial_cmp(&a[i])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    idx
}

/// Indices that would sort `a` ascending (ties broken by index, stable).
pub fn argsort_asc(a: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| {
        a[i].partial_cmp(&a[j])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm1(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(norm_inf(&[-1.0, 2.0, -3.0]), 3.0);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale_in_place(&mut y, 0.5);
        assert_eq!(y, vec![3.5, 4.5]);
    }

    #[test]
    fn add_sub() {
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 1.0]), vec![2.0, 3.0]);
        assert_eq!(add(&[3.0, 4.0], &[1.0, 1.0]), vec![4.0, 5.0]);
    }

    #[test]
    fn statistics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        // Huge values must not overflow to NaN.
        let c = softmax(&[1e308, 1e308]);
        assert!((c[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softmax_degenerate_inputs() {
        assert!(softmax(&[]).is_empty());
        let u = softmax(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert!((u[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn argsort_orders() {
        assert_eq!(argsort_desc(&[1.0, 3.0, 2.0]), vec![1, 2, 0]);
        assert_eq!(argsort_asc(&[1.0, 3.0, 2.0]), vec![0, 2, 1]);
        // Stable under ties.
        assert_eq!(argsort_desc(&[1.0, 1.0, 1.0]), vec![0, 1, 2]);
    }
}
