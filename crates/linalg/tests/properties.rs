//! Property-based tests for the linear-algebra substrate.

use ifair_linalg::{vector, Matrix, Qr, Svd};
use proptest::prelude::*;

/// Strategy producing a matrix with dimensions in the given ranges and
/// bounded, finite entries.
fn matrix_strategy(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0..100.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

fn tall_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..8, 1usize..5).prop_flat_map(|(extra, c)| {
        let r = c + extra; // strictly tall
        proptest::collection::vec(-50.0..50.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix_strategy(1..10, 1..10)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_right(m in matrix_strategy(1..8, 1..8)) {
        let i = Matrix::identity(m.cols());
        let prod = m.matmul(&i);
        prop_assert!(prod.sub(&m).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn transpose_reverses_products(
        a in matrix_strategy(1..6, 1..6),
        bdata in proptest::collection::vec(-10.0..10.0f64, 36),
    ) {
        // Build b with compatible shape from provided entries.
        let bc = 4usize;
        let b = Matrix::from_vec(a.cols(), bc, bdata[..a.cols() * bc].to_vec()).unwrap();
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.sub(&rhs).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn frobenius_triangle_inequality(
        a in matrix_strategy(2..6, 2..6),
    ) {
        let b = a.map(|x| x.sin() * 10.0);
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn dot_is_symmetric(v in proptest::collection::vec(-100.0..100.0f64, 1..32)) {
        let w: Vec<f64> = v.iter().map(|x| x * 0.5 + 1.0).collect();
        prop_assert!((vector::dot(&v, &w) - vector::dot(&w, &v)).abs() < 1e-9);
    }

    #[test]
    fn cauchy_schwarz(v in proptest::collection::vec(-100.0..100.0f64, 1..32)) {
        let w: Vec<f64> = v.iter().map(|x| x.cos() * 3.0).collect();
        let lhs = vector::dot(&v, &w).abs();
        let rhs = vector::norm2(&v) * vector::norm2(&w);
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn softmax_is_a_distribution(z in proptest::collection::vec(-50.0..50.0f64, 1..16)) {
        let p = vector::softmax(&z);
        prop_assert_eq!(p.len(), z.len());
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_preserves_order(z in proptest::collection::vec(-20.0..20.0f64, 2..8)) {
        let p = vector::softmax(&z);
        for i in 0..z.len() {
            for j in 0..z.len() {
                if z[i] > z[j] {
                    prop_assert!(p[i] >= p[j] - 1e-12);
                }
            }
        }
    }

    #[test]
    fn argsort_desc_sorts(v in proptest::collection::vec(-100.0..100.0f64, 1..32)) {
        let idx = vector::argsort_desc(&v);
        for w in idx.windows(2) {
            prop_assert!(v[w[0]] >= v[w[1]]);
        }
        // Is a permutation.
        let mut seen = vec![false; v.len()];
        for &i in &idx { seen[i] = true; }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn qr_reconstructs(m in tall_matrix()) {
        let qr = Qr::decompose(&m).unwrap();
        let rec = qr.q.matmul(&qr.r);
        prop_assert!(rec.sub(&m).unwrap().max_abs() < 1e-7);
        // Orthonormal columns.
        let qtq = qr.q.transpose().matmul(&qr.q);
        prop_assert!(qtq.sub(&Matrix::identity(m.cols())).unwrap().max_abs() < 1e-7);
    }

    #[test]
    fn svd_reconstructs_and_is_sorted(m in tall_matrix()) {
        let svd = Svd::decompose(&m).unwrap();
        prop_assert!(svd.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        prop_assert!(svd.s.iter().all(|&s| s >= 0.0));
        let rec = svd.reconstruct(m.cols());
        prop_assert!(rec.sub(&m).unwrap().max_abs() < 1e-6);
    }

    #[test]
    fn svd_truncation_monotone(m in tall_matrix()) {
        let svd = Svd::decompose(&m).unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..=m.cols() {
            let err = svd.reconstruct(k).sub(&m).unwrap().frobenius_norm();
            prop_assert!(err <= prev + 1e-8);
            prev = err;
        }
    }
}
