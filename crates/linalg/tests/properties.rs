//! Property-style tests for the linear-algebra substrate, exercised over
//! seeded random matrices (the offline toolchain has no proptest).

use ifair_linalg::{vector, Matrix, Qr, Svd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random matrix with dimensions in the given ranges and bounded entries.
fn random_matrix(
    rng: &mut StdRng,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    scale: f64,
) -> Matrix {
    let r = rng.gen_range(rows);
    let c = rng.gen_range(cols);
    let data: Vec<f64> = (0..r * c).map(|_| rng.gen_range(-scale..scale)).collect();
    Matrix::from_vec(r, c, data).unwrap()
}

/// Random strictly tall matrix (rows > cols).
fn tall_matrix(rng: &mut StdRng) -> Matrix {
    let c = rng.gen_range(1..5usize);
    let r = c + rng.gen_range(2..8usize);
    let data: Vec<f64> = (0..r * c).map(|_| rng.gen_range(-50.0..50.0)).collect();
    Matrix::from_vec(r, c, data).unwrap()
}

fn random_vec(rng: &mut StdRng, len: std::ops::Range<usize>, scale: f64) -> Vec<f64> {
    let n = rng.gen_range(len);
    (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
}

const CASES: usize = 32;

#[test]
fn transpose_is_involution() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 1..10, 1..10, 100.0);
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn matmul_identity_right() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 1..8, 1..8, 100.0);
        let i = Matrix::identity(m.cols());
        let prod = m.matmul(&i);
        assert!(prod.sub(&m).unwrap().max_abs() < 1e-9);
    }
}

#[test]
fn transpose_reverses_products() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 1..6, 1..6, 10.0);
        let bc = 4usize;
        let bdata: Vec<f64> = (0..a.cols() * bc)
            .map(|_| rng.gen_range(-10.0..10.0))
            .collect();
        let b = Matrix::from_vec(a.cols(), bc, bdata).unwrap();
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert!(lhs.sub(&rhs).unwrap().max_abs() < 1e-8);
    }
}

#[test]
fn frobenius_triangle_inequality() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..CASES {
        let a = random_matrix(&mut rng, 2..6, 2..6, 100.0);
        let b = a.map(|x| x.sin() * 10.0);
        let sum = a.add(&b).unwrap();
        assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }
}

#[test]
fn dot_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..CASES {
        let v = random_vec(&mut rng, 1..32, 100.0);
        let w: Vec<f64> = v.iter().map(|x| x * 0.5 + 1.0).collect();
        assert!((vector::dot(&v, &w) - vector::dot(&w, &v)).abs() < 1e-9);
    }
}

#[test]
fn cauchy_schwarz() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..CASES {
        let v = random_vec(&mut rng, 1..32, 100.0);
        let w: Vec<f64> = v.iter().map(|x| x.cos() * 3.0).collect();
        let lhs = vector::dot(&v, &w).abs();
        let rhs = vector::norm2(&v) * vector::norm2(&w);
        assert!(lhs <= rhs + 1e-9);
    }
}

#[test]
fn softmax_is_a_distribution() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..CASES {
        let z = random_vec(&mut rng, 1..16, 50.0);
        let p = vector::softmax(&z);
        assert_eq!(p.len(), z.len());
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn softmax_preserves_order() {
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..CASES {
        let z = random_vec(&mut rng, 2..8, 20.0);
        let p = vector::softmax(&z);
        for i in 0..z.len() {
            for j in 0..z.len() {
                if z[i] > z[j] {
                    assert!(p[i] >= p[j] - 1e-12);
                }
            }
        }
    }
}

#[test]
fn argsort_desc_sorts() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..CASES {
        let v = random_vec(&mut rng, 1..32, 100.0);
        let idx = vector::argsort_desc(&v);
        for w in idx.windows(2) {
            assert!(v[w[0]] >= v[w[1]]);
        }
        // Is a permutation.
        let mut seen = vec![false; v.len()];
        for &i in &idx {
            seen[i] = true;
        }
        assert!(seen.into_iter().all(|b| b));
    }
}

#[test]
fn qr_reconstructs() {
    let mut rng = StdRng::seed_from_u64(110);
    for _ in 0..CASES {
        let m = tall_matrix(&mut rng);
        let qr = Qr::decompose(&m).unwrap();
        let rec = qr.q.matmul(&qr.r);
        assert!(rec.sub(&m).unwrap().max_abs() < 1e-7);
        // Orthonormal columns.
        let qtq = qr.q.transpose().matmul(&qr.q);
        assert!(qtq.sub(&Matrix::identity(m.cols())).unwrap().max_abs() < 1e-7);
    }
}

#[test]
fn svd_reconstructs_and_is_sorted() {
    let mut rng = StdRng::seed_from_u64(111);
    for _ in 0..CASES {
        let m = tall_matrix(&mut rng);
        let svd = Svd::decompose(&m).unwrap();
        assert!(svd.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        assert!(svd.s.iter().all(|&s| s >= 0.0));
        let rec = svd.reconstruct(m.cols());
        assert!(rec.sub(&m).unwrap().max_abs() < 1e-6);
    }
}

#[test]
fn svd_truncation_monotone() {
    let mut rng = StdRng::seed_from_u64(112);
    for _ in 0..CASES {
        let m = tall_matrix(&mut rng);
        let svd = Svd::decompose(&m).unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..=m.cols() {
            let err = svd.reconstruct(k).sub(&m).unwrap().frobenius_norm();
            assert!(err <= prev + 1e-8);
            prev = err;
        }
    }
}
