//! Classification utility metrics: accuracy, ROC-AUC, confusion counts.

/// Fraction of predictions equal to the label.
///
/// Panics when lengths differ or the input is empty.
pub fn accuracy(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    assert!(!y_true.is_empty(), "empty input");
    let correct = y_true
        .iter()
        .zip(y_pred)
        .filter(|&(&t, &p)| (t - p).abs() < 0.5)
        .count();
    correct as f64 / y_true.len() as f64
}

/// Area under the ROC curve via the Mann–Whitney U statistic with average
/// ranks for ties.
///
/// Returns 0.5 when one of the classes is absent (the curve is undefined;
/// 0.5 is the conventional "no information" value and keeps grid searches
/// total).
pub fn auc(y_true: &[f64], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len(), "length mismatch");
    let n_pos = y_true.iter().filter(|&&t| t >= 0.5).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank scores ascending with average ranks for ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Positions i..=j share the average rank (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = y_true
        .iter()
        .zip(&ranks)
        .filter(|&(&t, _)| t >= 0.5)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Binary confusion counts with the derived rates used by the fairness
/// metrics (equality of opportunity needs per-group TPRs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies the confusion counts for binary labels/predictions.
    pub fn from_predictions(y_true: &[f64], y_pred: &[f64]) -> Confusion {
        assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
        let mut c = Confusion {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t >= 0.5, p >= 0.5) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
                (true, false) => c.fn_ += 1,
            }
        }
        c
    }

    /// True-positive rate (recall); 0 when there are no positives.
    pub fn tpr(&self) -> f64 {
        let pos = self.tp + self.fn_;
        if pos == 0 {
            0.0
        } else {
            self.tp as f64 / pos as f64
        }
    }

    /// False-positive rate; 0 when there are no negatives.
    pub fn fpr(&self) -> f64 {
        let neg = self.fp + self.tn;
        if neg == 0 {
            0.0
        } else {
            self.fp as f64 / neg as f64
        }
    }

    /// Precision; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let pred_pos = self.tp + self.fp;
        if pred_pos == 0 {
            0.0
        } else {
            self.tp as f64 / pred_pos as f64
        }
    }

    /// F1 score; 0 when precision + recall is 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.tpr();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Harmonic mean of two quantities in `[0, 1]` — the paper's "Optimal"
/// hyper-parameter tuning criterion combines AUC and yNN this way.
pub fn harmonic_mean(a: f64, b: f64) -> f64 {
    if a + b == 0.0 {
        0.0
    } else {
        2.0 * a * b / (a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1.0, 0.0, 1.0, 0.0], &[1.0, 0.0, 0.0, 0.0]), 0.75);
        assert_eq!(accuracy(&[1.0], &[1.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_check() {
        accuracy(&[1.0], &[1.0, 0.0]);
    }

    #[test]
    fn auc_perfect_separation() {
        let y = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&y, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(auc(&y, &[0.9, 0.8, 0.2, 0.1]), 0.0);
    }

    #[test]
    fn auc_random_scores_near_half() {
        let y = [0.0, 1.0, 0.0, 1.0];
        let s = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(auc(&y, &s), 0.5); // all tied: exactly 0.5 via avg ranks
    }

    #[test]
    fn auc_with_ties_averages_ranks() {
        // One positive tied with one negative, one clear positive above.
        let y = [0.0, 1.0, 1.0];
        let s = [0.5, 0.5, 0.9];
        // Pairs: (pos .5 vs neg .5) = 0.5; (pos .9 vs neg .5) = 1 => AUC .75
        assert!((auc(&y, &s) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(auc(&[1.0, 1.0], &[0.3, 0.9]), 0.5);
        assert_eq!(auc(&[0.0, 0.0], &[0.3, 0.9]), 0.5);
    }

    #[test]
    fn confusion_counts_and_rates() {
        let y = [1.0, 1.0, 0.0, 0.0, 1.0];
        let p = [1.0, 0.0, 1.0, 0.0, 1.0];
        let c = Confusion::from_predictions(&y, &p);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((c.tpr() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.fpr() - 0.5).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_degenerate() {
        let c = Confusion::from_predictions(&[0.0, 0.0], &[0.0, 0.0]);
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn harmonic_mean_cases() {
        assert_eq!(harmonic_mean(0.0, 0.5), 0.0);
        assert_eq!(harmonic_mean(0.0, 0.0), 0.0);
        assert!((harmonic_mean(0.5, 0.5) - 0.5).abs() < 1e-12);
        assert!(harmonic_mean(0.9, 0.1) < 0.5 * (0.9 + 0.1)); // <= arithmetic
    }
}
