//! The paper's fairness measures (§V-C).
//!
//! * **yNN consistency** (individual fairness, from Zemel et al. 2013 with
//!   the bug-fix noted in the paper's footnote 1):
//!   `yNN = 1 - (1 / (M·k)) Σ_i Σ_{j ∈ kNN(x*_i)} |ŷ_i - ŷ_j|`,
//!   where neighbours are computed on the **original non-protected**
//!   attributes and `ŷ` on the learned representation.
//! * **Statistical parity**: `1 - |E[ŷ | protected] - E[ŷ | unprotected]|`.
//! * **Equality of opportunity** (Hardt et al. 2016):
//!   `1 - |TPR_protected - TPR_unprotected|`.
//! * **% protected in top-k** — the ranking-task parity surrogate of §V-E.

use crate::classification::Confusion;
use crate::knn::k_nearest_all;
use ifair_linalg::Matrix;

/// yNN consistency of predictions `y_pred` with respect to neighbourhoods in
/// `reference_x` (the original records *without* protected attributes).
///
/// `y_pred` may be binary decisions or scores normalized to `[0, 1]`; the
/// measure is 1 when every record agrees with all of its `k` neighbours.
pub fn consistency(reference_x: &Matrix, y_pred: &[f64], k: usize) -> f64 {
    assert_eq!(
        reference_x.rows(),
        y_pred.len(),
        "predictions must align with reference records"
    );
    let neighbors = k_nearest_all(reference_x, k);
    consistency_with_neighbors(&neighbors, y_pred)
}

/// yNN consistency given precomputed neighbour lists (lets callers reuse the
/// expensive kNN across methods, as the evaluation harness does).
pub fn consistency_with_neighbors(neighbors: &[Vec<usize>], y_pred: &[f64]) -> f64 {
    assert_eq!(neighbors.len(), y_pred.len(), "length mismatch");
    if neighbors.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (i, nbrs) in neighbors.iter().enumerate() {
        for &j in nbrs {
            total += (y_pred[i] - y_pred[j]).abs();
            count += 1;
        }
    }
    if count == 0 {
        return 1.0;
    }
    1.0 - total / count as f64
}

/// Statistical parity: `1 - |P(ŷ=1 | g=1) - P(ŷ=1 | g=0)|`.
///
/// Accepts scores as well as hard decisions (then it compares group means).
/// Returns 1.0 when either group is empty.
pub fn statistical_parity(y_pred: &[f64], group: &[u8]) -> f64 {
    assert_eq!(y_pred.len(), group.len(), "length mismatch");
    let (mut sum_p, mut n_p, mut sum_u, mut n_u) = (0.0, 0.0, 0.0, 0.0);
    for (&y, &g) in y_pred.iter().zip(group) {
        if g == 1 {
            sum_p += y;
            n_p += 1.0;
        } else {
            sum_u += y;
            n_u += 1.0;
        }
    }
    if n_p == 0.0 || n_u == 0.0 {
        return 1.0;
    }
    1.0 - (sum_p / n_p - sum_u / n_u).abs()
}

/// Equality of opportunity: `1 - |TPR_protected - TPR_unprotected|`.
///
/// Returns 1.0 when either group has no positive examples (the TPR is
/// undefined; treating it as parity keeps sweeps total and matches how the
/// degenerate extremes appear in the paper's tables).
pub fn equal_opportunity(y_true: &[f64], y_pred: &[f64], group: &[u8]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    assert_eq!(y_true.len(), group.len(), "length mismatch");
    let split = |target: u8| -> (Vec<f64>, Vec<f64>) {
        let mut t = Vec::new();
        let mut p = Vec::new();
        for i in 0..y_true.len() {
            if group[i] == target {
                t.push(y_true[i]);
                p.push(y_pred[i]);
            }
        }
        (t, p)
    };
    let (t_p, p_p) = split(1);
    let (t_u, p_u) = split(0);
    let pos_p = t_p.iter().filter(|&&v| v >= 0.5).count();
    let pos_u = t_u.iter().filter(|&&v| v >= 0.5).count();
    if pos_p == 0 || pos_u == 0 {
        return 1.0;
    }
    let tpr_p = Confusion::from_predictions(&t_p, &p_p).tpr();
    let tpr_u = Confusion::from_predictions(&t_u, &p_u).tpr();
    1.0 - (tpr_p - tpr_u).abs()
}

/// Percentage (0-100) of protected candidates within the first `k` entries
/// of `ranking` (record indices ordered best-first).
pub fn protected_share_top_k(ranking: &[usize], group: &[u8], k: usize) -> f64 {
    let k = k.min(ranking.len());
    if k == 0 {
        return 0.0;
    }
    let protected = ranking[..k].iter().filter(|&&i| group[i] == 1).count();
    100.0 * protected as f64 / k as f64
}

/// Disparate impact ratio `min(r_p / r_u, r_u / r_p)` of positive rates —
/// an auxiliary measure (the "80% rule"); 1.0 when either rate is 0.
pub fn disparate_impact(y_pred: &[f64], group: &[u8]) -> f64 {
    assert_eq!(y_pred.len(), group.len(), "length mismatch");
    let (mut sum_p, mut n_p, mut sum_u, mut n_u) = (0.0, 0.0, 0.0, 0.0);
    for (&y, &g) in y_pred.iter().zip(group) {
        let pos = f64::from(y >= 0.5);
        if g == 1 {
            sum_p += pos;
            n_p += 1.0;
        } else {
            sum_u += pos;
            n_u += 1.0;
        }
    }
    if n_p == 0.0 || n_u == 0.0 {
        return 1.0;
    }
    let r_p = sum_p / n_p;
    let r_u = sum_u / n_u;
    if r_p == 0.0 || r_u == 0.0 {
        return if r_p == r_u { 1.0 } else { 0.0 };
    }
    (r_p / r_u).min(r_u / r_p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_perfect_when_all_agree() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![0.1], vec![0.2]]).unwrap();
        assert_eq!(consistency(&x, &[1.0, 1.0, 1.0], 2), 1.0);
        assert_eq!(consistency(&x, &[0.0, 0.0, 0.0], 2), 1.0);
    }

    #[test]
    fn consistency_penalizes_neighbor_disagreement() {
        // Two tight clusters; predictions flip inside the first cluster.
        let x = Matrix::from_rows(vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]]).unwrap();
        let consistent = consistency(&x, &[1.0, 1.0, 0.0, 0.0], 1);
        let inconsistent = consistency(&x, &[1.0, 0.0, 0.0, 0.0], 1);
        assert_eq!(consistent, 1.0);
        assert!(inconsistent < consistent);
        // k=1: pairs (0,1),(1,0),(2,3),(3,2): diffs 1,1,0,0 => 1 - 2/4 = 0.5
        assert!((inconsistent - 0.5).abs() < 1e-12);
    }

    #[test]
    fn consistency_with_scores() {
        let neighbors = vec![vec![1], vec![0]];
        let v = consistency_with_neighbors(&neighbors, &[0.2, 0.7]);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn consistency_degenerate_inputs() {
        assert_eq!(consistency_with_neighbors(&[], &[]), 1.0);
        let no_neighbors = vec![Vec::new()];
        assert_eq!(consistency_with_neighbors(&no_neighbors, &[1.0]), 1.0);
    }

    #[test]
    fn parity_perfect_and_worst() {
        let group = [1, 1, 0, 0];
        assert_eq!(statistical_parity(&[1.0, 0.0, 1.0, 0.0], &group), 1.0);
        assert_eq!(statistical_parity(&[1.0, 1.0, 0.0, 0.0], &group), 0.0);
        // Scores: group means 0.5 vs 0.3 => parity 0.8.
        let p = statistical_parity(&[0.5, 0.5, 0.3, 0.3], &group);
        assert!((p - 0.8).abs() < 1e-12);
    }

    #[test]
    fn parity_empty_group_is_one() {
        assert_eq!(statistical_parity(&[1.0, 0.0], &[0, 0]), 1.0);
    }

    #[test]
    fn eqopp_measures_tpr_gap() {
        // Protected: 2 positives, 1 predicted => TPR 0.5.
        // Unprotected: 2 positives, 2 predicted => TPR 1.0.
        let y_true = [1.0, 1.0, 1.0, 1.0];
        let y_pred = [1.0, 0.0, 1.0, 1.0];
        let group = [1, 1, 0, 0];
        let e = equal_opportunity(&y_true, &y_pred, &group);
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eqopp_ignores_negatives() {
        // Negatives' predictions must not matter.
        let y_true = [1.0, 0.0, 1.0, 0.0];
        let a = equal_opportunity(&y_true, &[1.0, 1.0, 1.0, 0.0], &[1, 1, 0, 0]);
        let b = equal_opportunity(&y_true, &[1.0, 0.0, 1.0, 1.0], &[1, 1, 0, 0]);
        assert_eq!(a, b);
        assert_eq!(a, 1.0);
    }

    #[test]
    fn eqopp_degenerate_no_positives() {
        let e = equal_opportunity(&[0.0, 1.0], &[0.0, 1.0], &[1, 0]);
        assert_eq!(e, 1.0);
    }

    #[test]
    fn top_k_share() {
        let group = [1, 0, 1, 0, 1];
        let ranking = [0, 1, 2, 3, 4];
        assert_eq!(protected_share_top_k(&ranking, &group, 2), 50.0);
        assert_eq!(protected_share_top_k(&ranking, &group, 5), 60.0);
        assert_eq!(protected_share_top_k(&ranking, &group, 0), 0.0);
        // k larger than the list: clamped.
        assert_eq!(protected_share_top_k(&ranking, &group, 10), 60.0);
    }

    #[test]
    fn disparate_impact_cases() {
        let group = [1, 1, 0, 0];
        assert_eq!(disparate_impact(&[1.0, 0.0, 1.0, 0.0], &group), 1.0);
        assert_eq!(disparate_impact(&[1.0, 1.0, 0.0, 0.0], &group), 0.0);
        let di = disparate_impact(&[1.0, 0.0, 1.0, 1.0], &group);
        assert!((di - 0.5).abs() < 1e-12);
    }
}
