//! Brute-force k-nearest-neighbour index.
//!
//! The yNN consistency metric (§V-C) computes, for every record, its `k = 10`
//! nearest neighbours **on the original non-protected attributes** and
//! compares predicted outcomes across the neighbourhood. Datasets here are at
//! most a few thousand evaluation records, so exact brute force (O(M² N)) is
//! both simplest and fast enough; no approximate index is needed.

use ifair_linalg::{vector, Matrix};

/// Indices of the `k` nearest rows to row `i` (Euclidean, excluding `i`).
///
/// Ties broken by index for determinism. `k` is clamped to `rows - 1`.
pub fn k_nearest(x: &Matrix, i: usize, k: usize) -> Vec<usize> {
    let m = x.rows();
    assert!(i < m, "row index out of range");
    let k = k.min(m.saturating_sub(1));
    let xi = x.row(i);
    let mut dists: Vec<(f64, usize)> = (0..m)
        .filter(|&j| j != i)
        .map(|j| (vector::sq_euclidean(xi, x.row(j)), j))
        .collect();
    // Partial selection: full sort is fine at these sizes but select_nth
    // keeps the complexity at O(M) per query.
    if k < dists.len() {
        dists.select_nth_unstable_by(k, |a, b| {
            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
        });
        dists.truncate(k);
    }
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    dists.into_iter().map(|(_, j)| j).collect()
}

/// The `k` nearest neighbours of every row (see [`k_nearest`]).
pub fn k_nearest_all(x: &Matrix, k: usize) -> Vec<Vec<usize>> {
    (0..x.rows()).map(|i| k_nearest(x, i, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Matrix {
        // Points on a line: 0, 1, 2, 10.
        Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]]).unwrap()
    }

    #[test]
    fn finds_nearest_on_line() {
        let x = line();
        assert_eq!(k_nearest(&x, 0, 2), vec![1, 2]);
        assert_eq!(k_nearest(&x, 3, 1), vec![2]);
        assert_eq!(k_nearest(&x, 1, 2), vec![0, 2]);
    }

    #[test]
    fn excludes_self() {
        let x = line();
        for i in 0..4 {
            assert!(!k_nearest(&x, i, 3).contains(&i));
        }
    }

    #[test]
    fn k_clamped_to_population() {
        let x = line();
        assert_eq!(k_nearest(&x, 0, 100).len(), 3);
    }

    #[test]
    fn ties_are_deterministic() {
        // Rows 1 and 2 are equidistant from row 0.
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![-1.0]]).unwrap();
        assert_eq!(k_nearest(&x, 0, 1), vec![1]); // lower index wins
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_variant_matches_single() {
        let x = line();
        let all = k_nearest_all(&x, 2);
        for i in 0..4 {
            assert_eq!(all[i], k_nearest(&x, i, 2));
        }
    }

    #[test]
    fn multidimensional_distances() {
        let x = Matrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0], // dist 5
            vec![1.0, 1.0], // dist sqrt(2)
        ])
        .unwrap();
        assert_eq!(k_nearest(&x, 0, 2), vec![2, 1]);
    }
}
