//! Utility, ranking and fairness metrics for the iFair reproduction (§V-C).
//!
//! * [`classification`] — accuracy, ROC-AUC (Mann–Whitney with tie
//!   correction), confusion counts,
//! * [`ranking`] — Kendall's τ, average precision at k / MAP, NDCG,
//! * [`fairness`] — the paper's measures: **yNN consistency** (individual
//!   fairness), **statistical parity**, **equality of opportunity**, and the
//!   share of protected candidates in top-k rankings,
//! * [`knn`] — the brute-force nearest-neighbour index behind yNN.
//!
//! Conventions: labels and predictions are `f64` slices with binary labels in
//! `{0.0, 1.0}`; group membership is `u8` with `1` = protected. All "higher
//! is better" fairness measures are normalized to `[0, 1]` exactly as
//! reported in the paper's tables (e.g. `Parity = 1 - |P(ŷ=1|prot) -
//! P(ŷ=1|unprot)|`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classification;
pub mod fairness;
pub mod knn;
pub mod ranking;

pub use classification::{accuracy, auc, harmonic_mean, Confusion};
pub use fairness::{
    consistency, consistency_with_neighbors, equal_opportunity, protected_share_top_k,
    statistical_parity,
};
pub use knn::k_nearest_all;
pub use ranking::{
    average_precision_at_k, kendall_tau, mean_average_precision, ndcg_at_k, ranking_from_scores,
};
