//! Ranking utility metrics (§V-C): Kendall's τ, AP@k / MAP, NDCG@k.
//!
//! The learning-to-rank evaluation compares a *predicted* ranking (from a
//! regression model trained on some representation) against the *deserved*
//! ranking induced by the ground-truth score.

use ifair_linalg::vector::argsort_desc;

/// Kendall rank correlation (τ-b, tie-corrected) between two score vectors.
///
/// Returns a value in `[-1, 1]`; 0 when either vector is constant. O(n²) —
/// per-query candidate lists in this workspace are tens to hundreds of items.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 && db == 0.0 {
                // tie in both: contributes to neither
            } else if da == 0.0 {
                ties_a += 1;
            } else if db == 0.0 {
                ties_b += 1;
            } else if (da > 0.0) == (db > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let denom = ((n0 - ties_a as f64) * (n0 - ties_b as f64)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Average precision at `k` of a predicted ranking against the relevant set
/// defined by the true scores' top-`k`.
///
/// `pred_ranking` lists candidate indices best-first. A candidate is
/// *relevant* if it belongs to the top-`k` of the deserved ranking (ties at
/// the boundary are all included). This is the paper's "average precision
/// (AP@10)" for ranking tasks.
pub fn average_precision_at_k(pred_ranking: &[usize], true_scores: &[f64], k: usize) -> f64 {
    let k = k.min(true_scores.len());
    if k == 0 {
        return 0.0;
    }
    // Relevant set: all candidates scoring at least the k-th best true score.
    let true_order = argsort_desc(true_scores);
    let threshold = true_scores[true_order[k - 1]];
    let relevant = |i: usize| true_scores[i] >= threshold;

    let mut hits = 0usize;
    let mut sum_prec = 0.0;
    for (pos, &i) in pred_ranking.iter().take(k).enumerate() {
        if relevant(i) {
            hits += 1;
            sum_prec += hits as f64 / (pos + 1) as f64;
        }
    }
    let denom = k.min(pred_ranking.len());
    if denom == 0 {
        0.0
    } else {
        sum_prec / denom as f64
    }
}

/// Mean of [`average_precision_at_k`] over queries.
///
/// Each query supplies `(predicted ranking, true scores)`; rankings index
/// into their own query-local score slice.
pub fn mean_average_precision(queries: &[(Vec<usize>, Vec<f64>)], k: usize) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    queries
        .iter()
        .map(|(ranking, scores)| average_precision_at_k(ranking, scores, k))
        .sum::<f64>()
        / queries.len() as f64
}

/// Normalized discounted cumulative gain at `k`, with the true scores as
/// gains (auxiliary metric; not in the paper's tables but standard for
/// sanity-checking ranking quality).
pub fn ndcg_at_k(pred_ranking: &[usize], true_scores: &[f64], k: usize) -> f64 {
    let k = k.min(pred_ranking.len()).min(true_scores.len());
    if k == 0 {
        return 0.0;
    }
    let dcg: f64 = pred_ranking
        .iter()
        .take(k)
        .enumerate()
        .map(|(pos, &i)| true_scores[i] / ((pos + 2) as f64).log2())
        .sum();
    let ideal_order = argsort_desc(true_scores);
    let idcg: f64 = ideal_order
        .iter()
        .take(k)
        .enumerate()
        .map(|(pos, &i)| true_scores[i] / ((pos + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Ranking (indices best-first) induced by a score vector.
pub fn ranking_from_scores(scores: &[f64]) -> Vec<usize> {
    argsort_desc(scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_perfect_agreement() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau(&a, &a) - 1.0).abs() < 1e-12);
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_known_value() {
        // Classic example: one discordant pair among 6.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 4.0, 3.0];
        // 5 concordant, 1 discordant => (5-1)/6
        assert!((kendall_tau(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn tau_constant_vector_is_zero() {
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn tau_handles_ties() {
        // Tie in a only: tau-b denominator shrinks.
        let a = [1.0, 1.0, 2.0];
        let b = [1.0, 2.0, 3.0];
        let t = kendall_tau(&a, &b);
        // pairs: (0,1) tie_a; (0,2) concordant; (1,2) concordant
        // tau_b = 2 / sqrt((3-1)*(3-0)) = 2/sqrt(6)
        assert!((t - 2.0 / 6.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn tau_single_element() {
        assert_eq!(kendall_tau(&[1.0], &[5.0]), 1.0);
    }

    #[test]
    fn ap_perfect_ranking() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        let ranking = ranking_from_scores(&scores); // 1, 3, 2, 0
        assert_eq!(ranking, vec![1, 3, 2, 0]);
        assert!((average_precision_at_k(&ranking, &scores, 2) - 1.0).abs() < 1e-12);
        assert!((average_precision_at_k(&ranking, &scores, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_penalizes_late_relevant() {
        let scores = [1.0, 0.9, 0.1, 0.0];
        // Relevant at k=2: items 0, 1. Prediction puts them at ranks 2, 4.
        let pred = vec![2, 0, 3, 1];
        let ap = average_precision_at_k(&pred, &scores, 2);
        // Within top-2 of prediction: item 0 at pos 2 => precision 1/2;
        // AP = (0 + 0.5)/2 = 0.25.
        assert!((ap - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ap_empty_is_zero() {
        assert_eq!(average_precision_at_k(&[], &[], 10), 0.0);
    }

    #[test]
    fn map_averages_queries() {
        let scores = vec![1.0, 0.5, 0.1];
        let perfect = ranking_from_scores(&scores);
        let worst = vec![2, 1, 0];
        let m = mean_average_precision(&[(perfect, scores.clone()), (worst, scores.clone())], 2);
        // Worst ranking top-2 = [2, 1]: item 1 relevant at pos 2 => AP 0.25.
        assert!((m - (1.0 + 0.25) / 2.0).abs() < 1e-12);
        assert_eq!(mean_average_precision(&[], 10), 0.0);
    }

    #[test]
    fn ndcg_perfect_is_one() {
        let scores = [3.0, 1.0, 2.0];
        let ranking = ranking_from_scores(&scores);
        assert!((ndcg_at_k(&ranking, &scores, 3) - 1.0).abs() < 1e-12);
        let worst = vec![1, 2, 0];
        assert!(ndcg_at_k(&worst, &scores, 3) < 1.0);
    }

    #[test]
    fn ndcg_zero_gains() {
        assert_eq!(ndcg_at_k(&[0, 1], &[0.0, 0.0], 2), 0.0);
    }
}
