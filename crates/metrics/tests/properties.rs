//! Property-based tests of the evaluation metrics: bounds, invariances and
//! symmetries that must hold for arbitrary inputs.

use ifair_linalg::Matrix;
use ifair_metrics::{
    accuracy, auc, average_precision_at_k, consistency, equal_opportunity, harmonic_mean,
    kendall_tau, ndcg_at_k, ranking_from_scores, statistical_parity,
};
use proptest::prelude::*;

fn labels_and_scores() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (4usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(prop::bool::ANY.prop_map(f64::from), n),
            proptest::collection::vec(0.0f64..1.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn auc_invariant_under_monotone_transform((labels, scores) in labels_and_scores()) {
        let a1 = auc(&labels, &scores);
        // Strictly increasing transform must not change the AUC.
        let transformed: Vec<f64> = scores.iter().map(|&s| (3.0 * s + 1.0).exp()).collect();
        let a2 = auc(&labels, &transformed);
        prop_assert!((a1 - a2).abs() < 1e-9, "{a1} vs {a2}");
        prop_assert!((0.0..=1.0).contains(&a1));
    }

    #[test]
    fn auc_flipping_scores_complements((labels, scores) in labels_and_scores()) {
        let pos = labels.iter().filter(|&&y| y == 1.0).count();
        prop_assume!(pos > 0 && pos < labels.len());
        let a = auc(&labels, &scores);
        let flipped: Vec<f64> = scores.iter().map(|&s| -s).collect();
        let b = auc(&labels, &flipped);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }

    #[test]
    fn accuracy_bounds_and_complement((labels, scores) in labels_and_scores()) {
        let preds: Vec<f64> = scores.iter().map(|&s| f64::from(s > 0.5)).collect();
        let acc = accuracy(&labels, &preds);
        prop_assert!((0.0..=1.0).contains(&acc));
        let anti: Vec<f64> = preds.iter().map(|&p| 1.0 - p).collect();
        prop_assert!((acc + accuracy(&labels, &anti) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_bounded_and_self_perfect(
        scores in proptest::collection::vec(-5.0f64..5.0, 3..40),
    ) {
        let t = kendall_tau(&scores, &scores);
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&t));
        // With at least two distinct values, self-correlation is exactly 1.
        let distinct = scores.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9);
        if distinct {
            prop_assert!((t - 1.0).abs() < 1e-9, "τ(x,x) = {t}");
        }
    }

    #[test]
    fn average_precision_of_true_ranking_is_one(
        scores in proptest::collection::vec(0.0f64..1.0, 10..40),
    ) {
        // Ranking by the true scores themselves gives perfect AP@k.
        let ranking = ranking_from_scores(&scores);
        let ap = average_precision_at_k(&ranking, &scores, 10);
        prop_assert!((ap - 1.0).abs() < 1e-9, "AP {ap}");
        let ndcg = ndcg_at_k(&ranking, &scores, 10);
        prop_assert!((ndcg - 1.0).abs() < 1e-9, "NDCG {ndcg}");
    }

    #[test]
    fn average_precision_bounded(
        (labels, scores) in labels_and_scores(),
    ) {
        let ranking = ranking_from_scores(&scores);
        let ap = average_precision_at_k(&ranking, &labels, 10);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
    }

    #[test]
    fn parity_and_eqopp_perfect_when_groups_identical(
        (labels, scores) in labels_and_scores(),
    ) {
        // Duplicate every record into both groups: group statistics match
        // exactly, so both group-fairness measures must be 1.
        let preds: Vec<f64> = scores.iter().map(|&s| f64::from(s > 0.5)).collect();
        let mut y2 = labels.clone();
        y2.extend_from_slice(&labels);
        let mut p2 = preds.clone();
        p2.extend_from_slice(&preds);
        let mut group = vec![0u8; labels.len()];
        group.extend(vec![1u8; labels.len()]);
        prop_assert!((statistical_parity(&p2, &group) - 1.0).abs() < 1e-12);
        prop_assert!((equal_opportunity(&y2, &p2, &group) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consistency_perfect_for_constant_predictions(
        rows in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 5..20),
    ) {
        let x = Matrix::from_rows(rows).unwrap();
        let preds = vec![1.0; x.rows()];
        let ynn = consistency(&x, &preds, 3);
        prop_assert!((ynn - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consistency_bounded(
        rows in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 5..20),
        bits in proptest::collection::vec(prop::bool::ANY, 20),
    ) {
        let x = Matrix::from_rows(rows).unwrap();
        let preds: Vec<f64> = bits.iter().take(x.rows()).map(|&b| f64::from(b)).collect();
        let ynn = consistency(&x, &preds, 3);
        prop_assert!((0.0..=1.0).contains(&ynn));
    }

    #[test]
    fn harmonic_mean_properties(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let h = harmonic_mean(a, b);
        // Bounded by min and the geometric mean (≤ arithmetic mean).
        prop_assert!(h >= a.min(b) - 1e-12);
        prop_assert!(h <= (a * b).sqrt() + 1e-12);
        prop_assert!((harmonic_mean(a, b) - harmonic_mean(b, a)).abs() < 1e-12);
        prop_assert!((harmonic_mean(a, a) - a).abs() < 1e-12);
    }
}
