//! Property-style tests of the evaluation metrics over seeded random inputs
//! (the offline toolchain has no proptest): bounds, invariances and
//! symmetries.

use ifair_linalg::Matrix;
use ifair_metrics::{
    accuracy, auc, average_precision_at_k, consistency, equal_opportunity, harmonic_mean,
    kendall_tau, ndcg_at_k, ranking_from_scores, statistical_parity,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn labels_and_scores(rng: &mut StdRng) -> (Vec<f64>, Vec<f64>) {
    let n = rng.gen_range(4..40usize);
    let labels = (0..n).map(|_| f64::from(rng.gen_bool(0.5))).collect();
    let scores = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    (labels, scores)
}

const CASES: usize = 48;

#[test]
fn auc_invariant_under_monotone_transform() {
    let mut rng = StdRng::seed_from_u64(501);
    for _ in 0..CASES {
        let (labels, scores) = labels_and_scores(&mut rng);
        let a1 = auc(&labels, &scores);
        // Strictly increasing transform must not change the AUC.
        let transformed: Vec<f64> = scores.iter().map(|&s| (3.0 * s + 1.0).exp()).collect();
        let a2 = auc(&labels, &transformed);
        assert!((a1 - a2).abs() < 1e-9, "{a1} vs {a2}");
        assert!((0.0..=1.0).contains(&a1));
    }
}

#[test]
fn auc_flipping_scores_complements() {
    let mut rng = StdRng::seed_from_u64(502);
    for _ in 0..CASES {
        let (labels, scores) = labels_and_scores(&mut rng);
        let pos = labels.iter().filter(|&&y| y == 1.0).count();
        if pos == 0 || pos == labels.len() {
            continue; // AUC undefined with a single class
        }
        let a = auc(&labels, &scores);
        let flipped: Vec<f64> = scores.iter().map(|&s| -s).collect();
        let b = auc(&labels, &flipped);
        assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }
}

#[test]
fn accuracy_bounds_and_complement() {
    let mut rng = StdRng::seed_from_u64(503);
    for _ in 0..CASES {
        let (labels, scores) = labels_and_scores(&mut rng);
        let preds: Vec<f64> = scores.iter().map(|&s| f64::from(s > 0.5)).collect();
        let acc = accuracy(&labels, &preds);
        assert!((0.0..=1.0).contains(&acc));
        let anti: Vec<f64> = preds.iter().map(|&p| 1.0 - p).collect();
        assert!((acc + accuracy(&labels, &anti) - 1.0).abs() < 1e-12);
    }
}

#[test]
fn kendall_tau_bounded_and_self_perfect() {
    let mut rng = StdRng::seed_from_u64(504);
    for _ in 0..CASES {
        let n = rng.gen_range(3..40usize);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let t = kendall_tau(&scores, &scores);
        assert!((-1.0..=1.0 + 1e-12).contains(&t));
        // With at least two distinct values, self-correlation is exactly 1.
        let distinct = scores.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9);
        if distinct {
            assert!((t - 1.0).abs() < 1e-9, "τ(x,x) = {t}");
        }
    }
}

#[test]
fn average_precision_of_true_ranking_is_one() {
    let mut rng = StdRng::seed_from_u64(505);
    for _ in 0..CASES {
        let n = rng.gen_range(10..40usize);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        // Ranking by the true scores themselves gives perfect AP@k.
        let ranking = ranking_from_scores(&scores);
        let ap = average_precision_at_k(&ranking, &scores, 10);
        assert!((ap - 1.0).abs() < 1e-9, "AP {ap}");
        let ndcg = ndcg_at_k(&ranking, &scores, 10);
        assert!((ndcg - 1.0).abs() < 1e-9, "NDCG {ndcg}");
    }
}

#[test]
fn average_precision_bounded() {
    let mut rng = StdRng::seed_from_u64(506);
    for _ in 0..CASES {
        let (labels, scores) = labels_and_scores(&mut rng);
        let ranking = ranking_from_scores(&scores);
        let ap = average_precision_at_k(&ranking, &labels, 10);
        assert!((0.0..=1.0 + 1e-12).contains(&ap));
    }
}

#[test]
fn parity_and_eqopp_perfect_when_groups_identical() {
    let mut rng = StdRng::seed_from_u64(507);
    for _ in 0..CASES {
        let (labels, scores) = labels_and_scores(&mut rng);
        // Duplicate every record into both groups: group statistics match
        // exactly, so both group-fairness measures must be 1.
        let preds: Vec<f64> = scores.iter().map(|&s| f64::from(s > 0.5)).collect();
        let mut y2 = labels.clone();
        y2.extend_from_slice(&labels);
        let mut p2 = preds.clone();
        p2.extend_from_slice(&preds);
        let mut group = vec![0u8; labels.len()];
        group.extend(vec![1u8; labels.len()]);
        assert!((statistical_parity(&p2, &group) - 1.0).abs() < 1e-12);
        assert!((equal_opportunity(&y2, &p2, &group) - 1.0).abs() < 1e-12);
    }
}

#[test]
fn consistency_perfect_for_constant_predictions() {
    let mut rng = StdRng::seed_from_u64(508);
    for _ in 0..CASES {
        let m = rng.gen_range(5..20usize);
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let preds = vec![1.0; x.rows()];
        let ynn = consistency(&x, &preds, 3);
        assert!((ynn - 1.0).abs() < 1e-12);
    }
}

#[test]
fn consistency_bounded() {
    let mut rng = StdRng::seed_from_u64(509);
    for _ in 0..CASES {
        let m = rng.gen_range(5..20usize);
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let preds: Vec<f64> = (0..m).map(|_| f64::from(rng.gen_bool(0.5))).collect();
        let ynn = consistency(&x, &preds, 3);
        assert!((0.0..=1.0).contains(&ynn));
    }
}

#[test]
fn harmonic_mean_properties() {
    let mut rng = StdRng::seed_from_u64(510);
    for _ in 0..CASES {
        let a = rng.gen_range(0.0..1.0);
        let b = rng.gen_range(0.0..1.0);
        let h = harmonic_mean(a, b);
        // Bounded by min and the geometric mean (≤ arithmetic mean).
        assert!(h >= a.min(b) - 1e-12);
        assert!(h <= (a * b).sqrt() + 1e-12);
        assert!((harmonic_mean(a, b) - harmonic_mean(b, a)).abs() < 1e-12);
        assert!((harmonic_mean(a, a) - a).abs() < 1e-12);
    }
}
