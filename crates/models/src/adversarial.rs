//! Adversarial accuracy: how much protected information a representation
//! still leaks (Fig. 4 of the paper, §V-F).
//!
//! Protocol: train a logistic-regression *adversary* to predict protected
//! group membership from the representation, on a random 70/30 split, and
//! report test accuracy. Near the majority-class share means the
//! representation has obfuscated the protected attribute; masked data
//! typically stays well above it because of correlated proxy attributes.

use crate::logreg::{LogisticRegression, LogisticRegressionConfig};
use ifair_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Test accuracy of a logistic-regression adversary predicting `group` from
/// rows of `representation` (70/30 split seeded by `seed`).
pub fn adversarial_accuracy(representation: &Matrix, group: &[u8], seed: u64) -> f64 {
    assert_eq!(
        representation.rows(),
        group.len(),
        "group labels must align with rows"
    );
    assert!(representation.rows() >= 10, "need at least 10 records");

    let mut idx: Vec<usize> = (0..representation.rows()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_train = (representation.rows() as f64 * 0.7).round() as usize;
    let (train_idx, test_idx) = idx.split_at(n_train);

    let x_train = representation.select_rows(train_idx);
    let y_train: Vec<f64> = train_idx.iter().map(|&i| f64::from(group[i])).collect();
    let x_test = representation.select_rows(test_idx);
    let y_test: Vec<f64> = test_idx.iter().map(|&i| f64::from(group[i])).collect();

    let model = LogisticRegression::fit(
        &x_train,
        &y_train,
        &LogisticRegressionConfig {
            l2: 1e-3,
            max_iters: 150,
            grad_tol: 1e-5,
        },
    )
    .expect("adversary inputs are validated above");
    ifair_metrics_accuracy(&y_test, &model.predict(&x_test))
}

/// Majority-class share — the floor an adversary can always reach.
pub fn majority_share(group: &[u8]) -> f64 {
    if group.is_empty() {
        return 0.0;
    }
    let ones = group.iter().filter(|&&g| g == 1).count();
    let zeros = group.len() - ones;
    ones.max(zeros) as f64 / group.len() as f64
}

// Local accuracy helper to avoid a dependency cycle with ifair-metrics.
fn ifair_metrics_accuracy(y_true: &[f64], y_pred: &[f64]) -> f64 {
    let correct = y_true
        .iter()
        .zip(y_pred)
        .filter(|&(&t, &p)| (t - p).abs() < 0.5)
        .count();
    correct as f64 / y_true.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaky_representation_scores_high() {
        // Group is literally a column of the representation.
        let n = 200;
        let x = Matrix::from_fn(n, 2, |i, j| {
            if j == 0 {
                f64::from(i % 2 == 0)
            } else {
                (i as f64 * 0.37).sin()
            }
        });
        let group: Vec<u8> = (0..n).map(|i| u8::from(i % 2 == 0)).collect();
        let acc = adversarial_accuracy(&x, &group, 0);
        assert!(acc > 0.95, "acc = {acc}");
    }

    #[test]
    fn obfuscated_representation_scores_near_majority() {
        // Features independent of the group.
        let n = 300;
        let x = Matrix::from_fn(n, 3, |i, j| ((i * 7 + j * 13) as f64 * 0.7).sin());
        let group: Vec<u8> = (0..n).map(|i| u8::from((i * 31 + 7) % 10 < 4)).collect();
        let acc = adversarial_accuracy(&x, &group, 1);
        let maj = majority_share(&group);
        assert!(acc <= maj + 0.12, "acc = {acc}, majority = {maj}");
    }

    #[test]
    fn majority_share_values() {
        assert_eq!(majority_share(&[]), 0.0);
        assert_eq!(majority_share(&[1, 1, 0, 0]), 0.5);
        assert_eq!(majority_share(&[1, 1, 1, 0]), 0.75);
    }

    #[test]
    fn deterministic_per_seed() {
        let n = 100;
        let x = Matrix::from_fn(n, 2, |i, j| ((i + j) as f64).cos());
        let group: Vec<u8> = (0..n).map(|i| u8::from(i % 3 == 0)).collect();
        assert_eq!(
            adversarial_accuracy(&x, &group, 5),
            adversarial_accuracy(&x, &group, 5)
        );
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn rejects_tiny_input() {
        let x = Matrix::zeros(5, 2);
        adversarial_accuracy(&x, &[0, 1, 0, 1, 0], 0);
    }
}
