//! Predictive models for the iFair reproduction.
//!
//! §V-B of the paper evaluates every representation by training "a standard
//! classifier (logistic regression) and a learning-to-rank regression model
//! (linear regression)" on it. This crate implements both from scratch on the
//! workspace substrates, plus the adversarial-accuracy protocol of Fig. 4:
//!
//! * [`LogisticRegression`] — L2-regularized, trained with L-BFGS on the
//!   numerically stable cross-entropy (analytic gradients, checked against
//!   finite differences in tests),
//! * [`RidgeRegression`] — linear regression via the Cholesky-solved normal
//!   equations with an optional ridge term,
//! * [`adversarial`] — train a classifier to predict the *protected group*
//!   from a representation; low accuracy means the representation obfuscates
//!   protected information (Fig. 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod linreg;
pub mod logreg;

pub use adversarial::adversarial_accuracy;
pub use ifair_api::{Estimator, FitError, Predict};
pub use linreg::{RidgeConfig, RidgeRegression};
pub use logreg::{LogisticRegression, LogisticRegressionConfig};
