//! Linear (ridge) regression — the paper's learning-to-rank model.
//!
//! §V-B applies "a learning-to-rank regression model (linear regression)" to
//! each representation; candidates are then ranked by predicted score. We
//! solve the ridge normal equations `(X'X + rI) w = X'y` via Cholesky (see
//! `ifair_linalg::solve::ridge_solve`), with an unpenalized intercept
//! obtained by centering.

use ifair_api::{check_width, ensure, shape_error, ConfigError, Estimator, FitError, Predict};
use ifair_data::Dataset;
use ifair_linalg::{solve, Matrix};
use serde::{Deserialize, Serialize};

/// Configuration of [`RidgeRegression`] — the unfitted estimator of the
/// learning-to-rank stage.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RidgeConfig {
    /// L2 penalty on the weights (never on the intercept).
    pub ridge: f64,
}

impl Default for RidgeConfig {
    fn default() -> Self {
        RidgeConfig { ridge: 1e-6 }
    }
}

impl RidgeConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(
            self.ridge.is_finite() && self.ridge >= 0.0,
            "ridge",
            "must be finite and non-negative",
        )
    }
}

impl Estimator for RidgeConfig {
    type Fitted = RidgeRegression;

    /// Fits on `ds.x` with `ds.y` as the real-valued target (the deserved
    /// score in ranking pipelines).
    fn fit(&self, ds: &Dataset) -> Result<RidgeRegression, FitError> {
        RidgeRegression::fit(&ds.x, ds.try_labels()?, self.ridge)
    }
}

/// A fitted linear regression model with optional ridge regularization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RidgeRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

impl RidgeRegression {
    /// Fits `y ≈ X w + b` with L2 penalty `ridge` on `w` (not on `b`).
    ///
    /// Centering both `X` and `y` removes the intercept from the penalized
    /// system; `b` is recovered as `mean(y) - mean(X) · w`.
    pub fn fit(x: &Matrix, y: &[f64], ridge: f64) -> Result<RidgeRegression, FitError> {
        RidgeConfig { ridge }.validate()?;
        if x.rows() != y.len() {
            return Err(shape_error(format!(
                "labels have length {} but X has {} rows",
                y.len(),
                x.rows()
            )));
        }
        if x.rows() == 0 {
            return Err(shape_error("cannot fit on an empty dataset"));
        }
        let x_means = x.col_means();
        let y_mean = ifair_linalg::vector::mean(y);
        let mut xc = x.clone();
        for i in 0..xc.rows() {
            let row = xc.row_mut(i);
            for (v, &m) in row.iter_mut().zip(&x_means) {
                *v -= m;
            }
        }
        let yc: Vec<f64> = y.iter().map(|&v| v - y_mean).collect();
        let weights = solve::ridge_solve(&xc, &yc, ridge)?;
        let bias = y_mean - ifair_linalg::vector::dot(&x_means, &weights);
        Ok(RidgeRegression { weights, bias })
    }

    /// Predicted scores for each row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(x.cols(), self.weights.len(), "feature width mismatch");
        x.row_iter()
            .map(|row| ifair_linalg::vector::dot(row, &self.weights) + self.bias)
            .collect()
    }

    /// Coefficient of determination `R²` on `(x, y)`.
    pub fn r_squared(&self, x: &Matrix, y: &[f64]) -> f64 {
        let preds = self.predict(x);
        let y_mean = ifair_linalg::vector::mean(y);
        let ss_res: f64 = preds.iter().zip(y).map(|(&p, &t)| (t - p) * (t - p)).sum();
        let ss_tot: f64 = y.iter().map(|&t| (t - y_mean) * (t - y_mean)).sum();
        if ss_tot == 0.0 {
            return if ss_res == 0.0 { 1.0 } else { 0.0 };
        }
        1.0 - ss_res / ss_tot
    }
}

impl Predict for RidgeRegression {
    /// Regressors have no probabilities: the predicted scores are returned
    /// as-is (what ranking pipelines sort by).
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        check_width(ds, self.weights.len(), "regressor")?;
        Ok(RidgeRegression::predict(self, &ds.x))
    }

    fn predict(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        Predict::predict_proba(self, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2 x0 - 3 x1 + 5
        let x = Matrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 1.0],
            vec![1.0, 2.0],
            vec![3.0, 3.0],
        ])
        .unwrap();
        let y: Vec<f64> = x
            .row_iter()
            .map(|r| 2.0 * r[0] - 3.0 * r[1] + 5.0)
            .collect();
        let model = RidgeRegression::fit(&x, &y, 0.0).unwrap();
        assert!((model.weights[0] - 2.0).abs() < 1e-8);
        assert!((model.weights[1] + 3.0).abs() < 1e-8);
        assert!((model.bias - 5.0).abs() < 1e-8);
        assert!((model.r_squared(&x, &y) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let plain = RidgeRegression::fit(&x, &y, 0.0).unwrap();
        let heavy = RidgeRegression::fit(&x, &y, 50.0).unwrap();
        assert!((plain.weights[0] - 2.0).abs() < 1e-8);
        assert!(heavy.weights[0].abs() < plain.weights[0].abs());
    }

    #[test]
    fn predicts_on_new_data() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let y = vec![1.0, 3.0, 5.0]; // y = 2x + 1
        let model = RidgeRegression::fit(&x, &y, 0.0).unwrap();
        let preds = model.predict(&Matrix::from_rows(vec![vec![10.0]]).unwrap());
        assert!((preds[0] - 21.0).abs() < 1e-8);
    }

    #[test]
    fn rejects_shape_mismatch_and_empty() {
        let x = Matrix::from_rows(vec![vec![1.0]]).unwrap();
        assert!(RidgeRegression::fit(&x, &[1.0, 2.0], 0.0).is_err());
        assert!(RidgeRegression::fit(&Matrix::zeros(0, 1), &[], 0.0).is_err());
    }

    #[test]
    fn collinear_features_need_ridge() {
        // Duplicate columns; ridge resolves the ambiguity.
        let x = Matrix::from_rows(vec![
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![4.0, 4.0],
        ])
        .unwrap();
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let model = RidgeRegression::fit(&x, &y, 1e-8).unwrap();
        let preds = model.predict(&x);
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 1e-4);
        }
    }

    #[test]
    fn r_squared_of_constant_target() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        let y = vec![3.0, 3.0];
        let model = RidgeRegression::fit(&x, &y, 0.1).unwrap();
        assert!(model.r_squared(&x, &y) >= 0.0);
    }
}
