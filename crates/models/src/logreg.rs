//! L2-regularized logistic regression trained with L-BFGS.

use ifair_api::{
    check_width, ensure, schema_error, shape_error, ConfigError, Estimator, FitError, Predict,
};
use ifair_data::Dataset;
use ifair_linalg::Matrix;
use ifair_optim::{Lbfgs, LbfgsConfig, Objective};
use serde::{Deserialize, Serialize};

/// Configuration for [`LogisticRegression`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// L2 penalty strength on the weights (never on the intercept).
    pub l2: f64,
    /// Maximum L-BFGS iterations.
    pub max_iters: usize,
    /// Gradient tolerance for convergence.
    pub grad_tol: f64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        LogisticRegressionConfig {
            l2: 1e-4,
            max_iters: 200,
            grad_tol: 1e-6,
        }
    }
}

impl LogisticRegressionConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(
            self.l2.is_finite() && self.l2 >= 0.0,
            "l2",
            "must be finite and non-negative",
        )?;
        ensure(self.max_iters >= 1, "max_iters", "must be at least 1")
    }
}

impl Estimator for LogisticRegressionConfig {
    type Fitted = LogisticRegression;

    /// Trains on `ds.x` with `ds.y` as binary labels.
    fn fit(&self, ds: &Dataset) -> Result<LogisticRegression, FitError> {
        LogisticRegression::fit(&ds.x, ds.try_labels()?, self)
    }
}

/// A fitted logistic-regression classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

/// Numerically stable `log(1 + exp(-|z|)) + max(z, 0) - z*y` cross-entropy
/// objective over `(weights, bias)` flattened as `[w_0..w_n, b]`.
struct CrossEntropy<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    l2: f64,
}

impl CrossEntropy<'_> {
    /// Mean cross-entropy and the per-sample `sigma(z) - y` residuals.
    fn forward(&self, params: &[f64]) -> (f64, Vec<f64>) {
        let n = self.x.cols();
        let (w, b) = (&params[..n], params[n]);
        let m = self.x.rows() as f64;
        let mut loss = 0.0;
        let mut residuals = Vec::with_capacity(self.x.rows());
        for (row, &yi) in self.x.row_iter().zip(self.y) {
            let z: f64 = ifair_linalg::vector::dot(row, w) + b;
            // log(1 + e^z) - z*y, computed stably.
            loss += z.max(0.0) - z * yi + (-z.abs()).exp().ln_1p();
            let p = sigmoid(z);
            residuals.push(p - yi);
        }
        loss /= m;
        loss += 0.5 * self.l2 * w.iter().map(|v| v * v).sum::<f64>();
        (loss, residuals)
    }
}

impl Objective for CrossEntropy<'_> {
    fn dim(&self) -> usize {
        self.x.cols() + 1
    }

    fn value(&self, params: &[f64]) -> f64 {
        self.forward(params).0
    }

    fn gradient(&self, params: &[f64], grad: &mut [f64]) {
        let (_, residuals) = self.forward(params);
        self.fill_gradient(params, &residuals, grad);
    }

    fn value_and_gradient(&self, params: &[f64], grad: &mut [f64]) -> f64 {
        let (loss, residuals) = self.forward(params);
        self.fill_gradient(params, &residuals, grad);
        loss
    }
}

impl CrossEntropy<'_> {
    fn fill_gradient(&self, params: &[f64], residuals: &[f64], grad: &mut [f64]) {
        let n = self.x.cols();
        let m = self.x.rows() as f64;
        grad.fill(0.0);
        for (row, &r) in self.x.row_iter().zip(residuals) {
            for (g, &xij) in grad[..n].iter_mut().zip(row) {
                *g += r * xij;
            }
            grad[n] += r;
        }
        for (g, &wj) in grad[..n].iter_mut().zip(&params[..n]) {
            *g = *g / m + self.l2 * wj;
        }
        grad[n] /= m;
    }
}

/// Logistic sigmoid, stable for large `|z|`.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Fits the classifier on rows of `x` with binary labels `y`.
    pub fn fit(
        x: &Matrix,
        y: &[f64],
        config: &LogisticRegressionConfig,
    ) -> Result<LogisticRegression, FitError> {
        config.validate()?;
        if x.rows() != y.len() {
            return Err(shape_error(format!(
                "labels have length {} but X has {} rows",
                y.len(),
                x.rows()
            )));
        }
        if x.rows() == 0 {
            return Err(shape_error("cannot fit on an empty dataset"));
        }
        if y.iter().any(|&v| v != 0.0 && v != 1.0) {
            return Err(schema_error("labels must be binary 0/1"));
        }
        let objective = CrossEntropy {
            x,
            y,
            l2: config.l2,
        };
        let result = Lbfgs::new(LbfgsConfig {
            max_iters: config.max_iters,
            grad_tol: config.grad_tol,
            ..Default::default()
        })
        .minimize(&objective, vec![0.0; x.cols() + 1]);
        let n = x.cols();
        Ok(LogisticRegression {
            weights: result.x[..n].to_vec(),
            bias: result.x[n],
        })
    }

    /// Fits with default configuration.
    pub fn fit_default(x: &Matrix, y: &[f64]) -> Result<LogisticRegression, FitError> {
        LogisticRegression::fit(x, y, &LogisticRegressionConfig::default())
    }

    /// Probability of the positive class for each row.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(x.cols(), self.weights.len(), "feature width mismatch");
        x.row_iter()
            .map(|row| sigmoid(ifair_linalg::vector::dot(row, &self.weights) + self.bias))
            .collect()
    }

    /// Hard 0/1 predictions at threshold 0.5.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| f64::from(p >= 0.5))
            .collect()
    }
}

impl Predict for LogisticRegression {
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        check_width(ds, self.weights.len(), "classifier")?;
        Ok(LogisticRegression::predict_proba(self, &ds.x))
    }

    fn predict(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        Ok(Predict::predict_proba(self, ds)?
            .into_iter()
            .map(|p| f64::from(p >= 0.5))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifair_optim::numgrad::check_gradient;

    fn separable() -> (Matrix, Vec<f64>) {
        // y = 1 iff x0 > 0.
        let x = Matrix::from_rows(vec![
            vec![-2.0, 1.0],
            vec![-1.5, -1.0],
            vec![-1.0, 0.5],
            vec![1.0, -0.5],
            vec![1.5, 1.0],
            vec![2.0, 0.0],
        ])
        .unwrap();
        let y = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        (x, y)
    }

    #[test]
    fn sigmoid_stable_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-300);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (x, y) = separable();
        let obj = CrossEntropy {
            x: &x,
            y: &y,
            l2: 0.1,
        };
        let params = vec![0.3, -0.5, 0.1];
        let report = check_gradient(&obj, &params, 1e-6);
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn fits_separable_data() {
        let (x, y) = separable();
        let model = LogisticRegression::fit_default(&x, &y).unwrap();
        let preds = model.predict(&x);
        assert_eq!(preds, y);
        // The separating weight is on x0.
        assert!(model.weights[0].abs() > model.weights[1].abs());
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (x, y) = separable();
        let model = LogisticRegression::fit_default(&x, &y).unwrap();
        for p in model.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn heavy_regularization_shrinks_weights() {
        let (x, y) = separable();
        let light = LogisticRegression::fit(
            &x,
            &y,
            &LogisticRegressionConfig {
                l2: 1e-6,
                ..Default::default()
            },
        )
        .unwrap();
        let heavy = LogisticRegression::fit(
            &x,
            &y,
            &LogisticRegressionConfig {
                l2: 10.0,
                ..Default::default()
            },
        )
        .unwrap();
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(&heavy.weights) < norm(&light.weights));
    }

    #[test]
    fn rejects_non_binary_labels_with_typed_error() {
        let (x, mut y) = separable();
        y[0] = 0.5;
        let err = LogisticRegression::fit_default(&x, &y).unwrap_err();
        assert!(matches!(err, FitError::Data(_)));
        assert!(err.to_string().contains("binary"));
        assert!(LogisticRegression::fit_default(&x, &y[..3]).is_err());
        assert!(matches!(
            LogisticRegression::fit(
                &x,
                &separable().1,
                &LogisticRegressionConfig {
                    l2: -1.0,
                    ..Default::default()
                }
            ),
            Err(FitError::Config(_))
        ));
    }

    #[test]
    fn constant_labels_predict_constant() {
        let (x, _) = separable();
        let y = vec![1.0; 6];
        let model = LogisticRegression::fit_default(&x, &y).unwrap();
        let preds = model.predict(&x);
        assert!(preds.iter().all(|&p| p == 1.0));
    }

    #[test]
    fn serde_roundtrip() {
        let (x, y) = separable();
        let model = LogisticRegression::fit_default(&x, &y).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: LogisticRegression = serde_json::from_str(&json).unwrap();
        assert_eq!(model.weights, back.weights);
    }
}
