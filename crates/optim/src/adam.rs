//! First-order optimizers: Adam and plain gradient descent.
//!
//! These exist for the ablation benches (DESIGN.md §5: "L-BFGS vs Adam vs
//! plain GD on the same objective") and as robust fallbacks for objectives
//! whose curvature information is noisy.

use crate::line_search::backtracking;
use crate::problem::{Objective, OptimResult, Termination};
use serde::{Deserialize, Serialize};

/// Configuration of the [`Adam`] optimizer (Kingma & Ba 2015 defaults).
#[derive(Debug, Clone)]
pub struct AdamConfig {
    /// Step size.
    pub learning_rate: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub epsilon: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence threshold on the gradient infinity norm.
    pub grad_tol: f64,
    /// Optional per-variable box constraints (projected after each step).
    pub bounds: Option<Vec<(f64, f64)>>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            learning_rate: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            max_iters: 1000,
            grad_tol: 1e-6,
            bounds: None,
        }
    }
}

/// Resumable Adam moment state: the first/second moment vectors plus the
/// step counter behind the bias correction.
///
/// [`Adam::minimize`] drives a whole optimization through this type, but it
/// is public on its own so *stochastic* trainers (mini-batch SGD over a
/// resampled objective, where no fixed `Objective` exists across steps) can
/// apply one Adam update per gradient while keeping the moment estimates
/// warm across batches and epochs.
///
/// The state is `Serialize`/`Deserialize` (and reconstructible via
/// [`AdamState::from_parts`]) so checkpointed trainers can persist it
/// mid-run and resume with bit-identical updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u32,
}

impl AdamState {
    /// Fresh (zeroed) moments for a `dim`-dimensional parameter vector.
    pub fn new(dim: usize) -> AdamState {
        AdamState {
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Rebuilds a state from captured moments and step count — the inverse
    /// of [`AdamState::first_moment`] / [`AdamState::second_moment`] /
    /// [`AdamState::steps`], for checkpoint restore paths that validate
    /// their payload before trusting it.
    ///
    /// # Panics
    /// Panics if `m` and `v` lengths differ.
    pub fn from_parts(m: Vec<f64>, v: Vec<f64>, t: u32) -> AdamState {
        assert_eq!(m.len(), v.len(), "moment vectors must share a dimension");
        AdamState { m, v, t }
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u32 {
        self.t
    }

    /// The first-moment (mean) estimate vector.
    pub fn first_moment(&self) -> &[f64] {
        &self.m
    }

    /// The second-moment (uncentered variance) estimate vector.
    pub fn second_moment(&self) -> &[f64] {
        &self.v
    }

    /// Applies one bias-corrected Adam update of `x` along `grad`, then
    /// projects `x` onto `config.bounds` (when set). Step sizes and decay
    /// rates come from `config`; `max_iters`/`grad_tol` are ignored (the
    /// caller owns the outer loop).
    ///
    /// # Panics
    /// Panics if `x` or `grad` length differs from the state's dimension.
    pub fn step(&mut self, x: &mut [f64], grad: &[f64], config: &AdamConfig) {
        let n = self.m.len();
        assert_eq!(x.len(), n, "parameter vector has wrong dimension");
        assert_eq!(grad.len(), n, "gradient has wrong dimension");
        let c = config;
        self.t += 1;
        let b1t = 1.0 - c.beta1.powi(self.t as i32);
        let b2t = 1.0 - c.beta2.powi(self.t as i32);
        for i in 0..n {
            self.m[i] = c.beta1 * self.m[i] + (1.0 - c.beta1) * grad[i];
            self.v[i] = c.beta2 * self.v[i] + (1.0 - c.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            x[i] -= c.learning_rate * mhat / (vhat.sqrt() + c.epsilon);
        }
        project(x, c.bounds.as_deref());
    }
}

/// The Adam optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
}

impl Adam {
    /// Creates an Adam optimizer with the given configuration.
    pub fn new(config: AdamConfig) -> Self {
        Adam { config }
    }

    /// Minimizes `objective` starting from `x0`.
    pub fn minimize<O: Objective + ?Sized>(&self, objective: &O, x0: Vec<f64>) -> OptimResult {
        let n = objective.dim();
        assert_eq!(x0.len(), n, "initial point has wrong dimension");
        let c = &self.config;
        let mut x = x0;
        project(&mut x, c.bounds.as_deref());
        let mut state = AdamState::new(n);
        let mut grad = vec![0.0; n];
        let mut n_evals = 0usize;
        let mut termination = Termination::MaxIterations;
        let mut iterations = 0usize;
        let mut f = f64::INFINITY;

        for t in 1..=c.max_iters {
            iterations = t;
            f = objective.value_and_gradient(&x, &mut grad);
            n_evals += 1;
            let gnorm = grad.iter().fold(0.0_f64, |acc, g| acc.max(g.abs()));
            if gnorm <= c.grad_tol {
                termination = Termination::GradientTolerance;
                iterations = t - 1;
                break;
            }
            state.step(&mut x, &grad, c);
        }
        let value = objective.value(&x);
        n_evals += 1;
        objective.gradient(&x, &mut grad);
        let grad_norm = grad.iter().fold(0.0_f64, |acc, g| acc.max(g.abs()));
        let converged = matches!(termination, Termination::GradientTolerance);
        OptimResult {
            x,
            value: value.min(f),
            grad_norm,
            iterations,
            n_evals,
            converged,
            termination,
        }
    }
}

/// Plain gradient descent with Armijo backtracking.
#[derive(Debug, Clone)]
pub struct GradientDescent {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence threshold on the gradient infinity norm.
    pub grad_tol: f64,
}

impl Default for GradientDescent {
    fn default() -> Self {
        GradientDescent {
            max_iters: 1000,
            grad_tol: 1e-6,
        }
    }
}

impl GradientDescent {
    /// Minimizes `objective` starting from `x0`.
    pub fn minimize<O: Objective + ?Sized>(&self, objective: &O, x0: Vec<f64>) -> OptimResult {
        let n = objective.dim();
        assert_eq!(x0.len(), n, "initial point has wrong dimension");
        let mut x = x0;
        let mut grad = vec![0.0; n];
        let mut f = objective.value_and_gradient(&x, &mut grad);
        let mut n_evals = 1usize;
        let mut termination = Termination::MaxIterations;
        let mut iterations = 0usize;
        for it in 0..self.max_iters {
            iterations = it + 1;
            let gnorm = grad.iter().fold(0.0_f64, |acc, g| acc.max(g.abs()));
            if gnorm <= self.grad_tol {
                termination = Termination::GradientTolerance;
                iterations = it;
                break;
            }
            let d: Vec<f64> = grad.iter().map(|&g| -g).collect();
            let g0 = -grad.iter().map(|g| g * g).sum::<f64>();
            let Some((alpha, f_new)) = backtracking(objective, &x, &d, f, g0, 1e-4, 60) else {
                termination = Termination::LineSearchFailed;
                break;
            };
            n_evals += 1;
            for (xi, &di) in x.iter_mut().zip(&d) {
                *xi += alpha * di;
            }
            f = f_new;
            objective.gradient(&x, &mut grad);
            n_evals += 1;
        }
        let grad_norm = grad.iter().fold(0.0_f64, |acc, g| acc.max(g.abs()));
        let converged = matches!(termination, Termination::GradientTolerance);
        OptimResult {
            x,
            value: f,
            grad_norm,
            iterations,
            n_evals,
            converged,
            termination,
        }
    }
}

fn project(x: &mut [f64], bounds: Option<&[(f64, f64)]>) {
    if let Some(b) = bounds {
        for (xi, &(lo, hi)) in x.iter_mut().zip(b) {
            *xi = xi.clamp(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnObjective;

    fn sphere(n: usize) -> impl Objective {
        FnObjective::new(
            n,
            |x: &[f64]| x.iter().map(|v| v * v).sum(),
            |x: &[f64], g: &mut [f64]| {
                for (gi, &xi) in g.iter_mut().zip(x) {
                    *gi = 2.0 * xi;
                }
            },
        )
    }

    #[test]
    fn adam_minimizes_sphere() {
        let res = Adam::new(AdamConfig {
            max_iters: 3000,
            ..Default::default()
        })
        .minimize(&sphere(4), vec![2.0, -1.0, 0.5, 3.0]);
        assert!(res.value < 1e-6, "value {}", res.value);
    }

    #[test]
    fn adam_respects_bounds() {
        let res = Adam::new(AdamConfig {
            bounds: Some(vec![(1.0, 5.0)]),
            max_iters: 2000,
            ..Default::default()
        })
        .minimize(&sphere(1), vec![4.0]);
        assert!((res.x[0] - 1.0).abs() < 1e-4, "x = {}", res.x[0]);
    }

    #[test]
    fn adam_state_matches_minimize_bitwise() {
        // Driving AdamState by hand must replay Adam::minimize exactly —
        // the stochastic trainers rely on the stepper being the same math.
        let obj = sphere(3);
        let config = AdamConfig {
            max_iters: 50,
            grad_tol: 0.0,
            bounds: Some(vec![(-2.0, 2.0); 3]),
            ..Default::default()
        };
        let x0 = vec![1.5, -0.7, 2.0];
        let res = Adam::new(config.clone()).minimize(&obj, x0.clone());
        let mut x = x0;
        project(&mut x, config.bounds.as_deref());
        let mut state = AdamState::new(3);
        let mut grad = vec![0.0; 3];
        for _ in 0..50 {
            obj.value_and_gradient(&x, &mut grad);
            state.step(&mut x, &grad, &config);
        }
        assert_eq!(state.steps(), 50);
        let manual: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        let auto: Vec<u64> = res.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(manual, auto);
    }

    #[test]
    fn adam_state_survives_a_parts_roundtrip_bitwise() {
        // Checkpointed trainers snapshot the moments mid-run and rebuild
        // them later; the rebuilt stepper must continue bit-identically.
        let obj = sphere(3);
        let config = AdamConfig::default();
        let mut x = vec![1.5, -0.7, 2.0];
        let mut state = AdamState::new(3);
        let mut grad = vec![0.0; 3];
        for _ in 0..7 {
            obj.value_and_gradient(&x, &mut grad);
            state.step(&mut x, &grad, &config);
        }
        let mut rebuilt = AdamState::from_parts(
            state.first_moment().to_vec(),
            state.second_moment().to_vec(),
            state.steps(),
        );
        assert_eq!(rebuilt, state);
        let mut x2 = x.clone();
        for _ in 0..7 {
            obj.value_and_gradient(&x, &mut grad);
            state.step(&mut x, &grad, &config);
            obj.value_and_gradient(&x2, &mut grad);
            rebuilt.step(&mut x2, &grad, &config);
        }
        let a: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = x2.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn mismatched_moment_parts_are_rejected() {
        let _ = AdamState::from_parts(vec![0.0; 2], vec![0.0; 3], 1);
    }

    #[test]
    fn gd_minimizes_sphere() {
        let res = GradientDescent::default().minimize(&sphere(3), vec![1.0, 2.0, -3.0]);
        assert!(res.converged);
        assert!(res.value < 1e-8);
    }

    #[test]
    fn gd_reports_max_iters() {
        let res = GradientDescent {
            max_iters: 1,
            grad_tol: 1e-300,
        }
        .minimize(&sphere(2), vec![1.0, 1.0]);
        assert!(!res.converged);
        assert_eq!(res.termination, Termination::MaxIterations);
    }
}
