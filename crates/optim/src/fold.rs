//! Deterministic gradient accumulation.
//!
//! Every parallel gradient in the workspace is computed as per-chunk
//! partials and *folded* into the accumulator in a fixed chunk order —
//! never in arrival order — so the floating-point summation tree is a
//! function of the problem size alone. That discipline is what makes
//! seeded fits bit-identical across thread counts (in-process pools) and
//! worker counts (the multi-process data-parallel trainer, whose
//! coordinator folds worker partials through [`fold_in_order`]).
//!
//! These helpers are deliberately plain element-wise loops: the fold's
//! correctness contract is its *order*, and an unrolled or reassociating
//! implementation would silently change the sums.

/// Adds `part` into `acc` element-wise. Panics on length mismatch — a
/// partial of the wrong shape is a logic error, not an input error.
pub fn add_assign(acc: &mut [f64], part: &[f64]) {
    assert_eq!(
        acc.len(),
        part.len(),
        "gradient partial length mismatch in fold"
    );
    for (a, p) in acc.iter_mut().zip(part) {
        *a += p;
    }
}

/// Folds `parts` into `acc` strictly in iteration order — the caller
/// supplies partials already arranged in global chunk order, and the sum
/// `acc + p0 + p1 + ...` is evaluated left to right, matching the serial
/// single-buffer fold bit for bit.
pub fn fold_in_order<'a>(acc: &mut [f64], parts: impl IntoIterator<Item = &'a [f64]>) {
    for part in parts {
        add_assign(acc, part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_matches_the_serial_left_to_right_sum() {
        // Values chosen so reassociation changes the result: folding tiny
        // terms before the large one loses them, after it keeps them.
        let tiny = f64::EPSILON / 2.0;
        let parts: Vec<Vec<f64>> = vec![vec![1.0], vec![tiny], vec![tiny]];
        let mut acc = vec![0.0];
        fold_in_order(&mut acc, parts.iter().map(Vec::as_slice));
        let mut serial = 0.0;
        for p in &parts {
            serial += p[0];
        }
        assert_eq!(acc[0].to_bits(), serial.to_bits());

        let mut reordered = vec![0.0];
        fold_in_order(&mut reordered, parts.iter().rev().map(Vec::as_slice));
        assert_ne!(
            acc[0].to_bits(),
            reordered[0].to_bits(),
            "the order genuinely matters for these values"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_partials_panic() {
        add_assign(&mut [0.0, 0.0], &[1.0]);
    }
}
