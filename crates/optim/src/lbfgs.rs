//! Limited-memory BFGS (Liu & Nocedal 1989) with strong-Wolfe line search.
//!
//! This is the optimizer the iFair paper uses to fit its representation
//! (§III-C). The implementation follows Nocedal & Wright (Numerical
//! Optimization, Algorithm 7.4/7.5): two-loop recursion over the last `m`
//! curvature pairs, with the standard `gamma_k` initial Hessian scaling.
//!
//! Box constraints (used to keep iFair's attribute weights `alpha` in
//! `[0, 1]`, mirroring scipy's `fmin_l_bfgs_b` bounds in the reference
//! implementation) are handled by projecting each accepted iterate onto the
//! box and discarding curvature pairs that the projection invalidates. This
//! is the classical projected quasi-Newton simplification rather than the
//! full L-BFGS-B active-set algorithm; for the small boxes used here it
//! behaves equivalently and is dramatically simpler.

use crate::line_search::{strong_wolfe, WolfeParams};
use crate::problem::{Objective, OptimResult, Termination};
use std::collections::VecDeque;

/// Configuration of the L-BFGS optimizer.
#[derive(Debug, Clone)]
pub struct LbfgsConfig {
    /// Number of curvature pairs retained (`m`), typically 5-20.
    pub memory: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Convergence threshold on the gradient infinity norm.
    pub grad_tol: f64,
    /// Convergence threshold on the relative objective decrease.
    pub f_tol: f64,
    /// Optional per-variable `(lower, upper)` box constraints.
    pub bounds: Option<Vec<(f64, f64)>>,
    /// Line-search parameters.
    pub wolfe: WolfeParams,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        LbfgsConfig {
            memory: 10,
            max_iters: 200,
            grad_tol: 1e-6,
            f_tol: 1e-10,
            bounds: None,
            wolfe: WolfeParams::default(),
        }
    }
}

/// The L-BFGS optimizer. See the [module docs](self) for background.
#[derive(Debug, Clone)]
pub struct Lbfgs {
    config: LbfgsConfig,
}

struct CurvaturePair {
    s: Vec<f64>,
    y: Vec<f64>,
    rho: f64,
}

impl Lbfgs {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: LbfgsConfig) -> Self {
        Lbfgs { config }
    }

    /// Convenience constructor with default configuration.
    pub fn default_config() -> Self {
        Lbfgs::new(LbfgsConfig::default())
    }

    /// Minimizes `objective` starting from `x0`.
    ///
    /// Panics if `x0.len() != objective.dim()` or if the bounds vector (when
    /// present) has the wrong length — both are programming errors.
    pub fn minimize<O: Objective + ?Sized>(&self, objective: &O, x0: Vec<f64>) -> OptimResult {
        let n = objective.dim();
        assert_eq!(x0.len(), n, "initial point has wrong dimension");
        if let Some(b) = &self.config.bounds {
            assert_eq!(b.len(), n, "bounds vector has wrong dimension");
        }

        let mut x = x0;
        self.project(&mut x);
        let mut grad = vec![0.0; n];
        let mut f = objective.value_and_gradient(&x, &mut grad);
        let mut n_evals = 1usize;
        if let Some(b) = &self.config.bounds {
            project_gradient_inplace(&x, &mut grad.clone(), b);
        }

        let mut pairs: VecDeque<CurvaturePair> = VecDeque::with_capacity(self.config.memory);
        let mut termination = Termination::MaxIterations;
        let mut iterations = 0usize;

        for iter in 0..self.config.max_iters {
            iterations = iter + 1;
            // Convergence on the (projected) gradient.
            let gnorm = self.projected_grad_norm(&x, &grad);
            if gnorm <= self.config.grad_tol {
                termination = Termination::GradientTolerance;
                iterations = iter;
                break;
            }

            // Two-loop recursion: d = -H * grad.
            let mut d = two_loop(&pairs, &grad);
            for di in &mut d {
                *di = -*di;
            }
            let mut g0: f64 = d.iter().zip(&grad).map(|(&di, &gi)| di * gi).sum();
            if g0 >= 0.0 {
                // Stale curvature produced a non-descent direction: restart
                // from steepest descent.
                pairs.clear();
                for (di, &gi) in d.iter_mut().zip(&grad) {
                    *di = -gi;
                }
                g0 = -grad.iter().map(|g| g * g).sum::<f64>();
                if g0 >= 0.0 {
                    termination = Termination::GradientTolerance;
                    break;
                }
            }

            let Some(ls) = strong_wolfe(objective, &x, &d, f, g0, &self.config.wolfe) else {
                termination = Termination::LineSearchFailed;
                break;
            };
            n_evals += ls.n_evals;

            // Accept the step; project onto the box when bounded.
            let mut x_new: Vec<f64> = x
                .iter()
                .zip(&d)
                .map(|(&xi, &di)| xi + ls.alpha * di)
                .collect();
            let projected = self.project(&mut x_new);
            let (f_new, grad_new) = if projected {
                // Projection moved the point: the line-search gradient is no
                // longer valid, so re-evaluate.
                let mut g = vec![0.0; n];
                let fv = objective.value_and_gradient(&x_new, &mut g);
                n_evals += 1;
                (fv, g)
            } else {
                (ls.value, ls.gradient)
            };

            // Curvature pair update (skip when the pair fails the curvature
            // condition, which would break positive-definiteness).
            let s: Vec<f64> = x_new.iter().zip(&x).map(|(&a, &b)| a - b).collect();
            let y: Vec<f64> = grad_new.iter().zip(&grad).map(|(&a, &b)| a - b).collect();
            let sy: f64 = s.iter().zip(&y).map(|(&a, &b)| a * b).sum();
            let yy: f64 = y.iter().map(|v| v * v).sum();
            if sy > 1e-10 * yy.sqrt().max(1e-30) {
                if pairs.len() == self.config.memory {
                    pairs.pop_front();
                }
                pairs.push_back(CurvaturePair {
                    s,
                    y,
                    rho: 1.0 / sy,
                });
            } else if projected {
                // Projection produced inconsistent curvature: reset memory.
                pairs.clear();
            }

            let f_decrease = (f - f_new).abs() / f.abs().max(f_new.abs()).max(1.0);
            x = x_new;
            grad = grad_new;
            f = f_new;
            if f_decrease <= self.config.f_tol {
                termination = Termination::FunctionTolerance;
                break;
            }
        }

        let grad_norm = self.projected_grad_norm(&x, &grad);
        let converged = matches!(
            termination,
            Termination::GradientTolerance | Termination::FunctionTolerance
        );
        OptimResult {
            x,
            value: f,
            grad_norm,
            iterations,
            n_evals,
            converged,
            termination,
        }
    }

    /// Projects `x` onto the box, returning whether anything changed.
    fn project(&self, x: &mut [f64]) -> bool {
        let Some(bounds) = &self.config.bounds else {
            return false;
        };
        let mut changed = false;
        for (xi, &(lo, hi)) in x.iter_mut().zip(bounds) {
            let clamped = xi.clamp(lo, hi);
            if clamped != *xi {
                *xi = clamped;
                changed = true;
            }
        }
        changed
    }

    /// Infinity norm of the gradient, ignoring components that push against
    /// an active bound (those are stationary for the constrained problem).
    fn projected_grad_norm(&self, x: &[f64], grad: &[f64]) -> f64 {
        match &self.config.bounds {
            None => grad.iter().fold(0.0_f64, |m, g| m.max(g.abs())),
            Some(bounds) => {
                let mut m = 0.0_f64;
                for ((&xi, &gi), &(lo, hi)) in x.iter().zip(grad).zip(bounds) {
                    let active_lo = xi <= lo && gi > 0.0;
                    let active_hi = xi >= hi && gi < 0.0;
                    if !active_lo && !active_hi {
                        m = m.max(gi.abs());
                    }
                }
                m
            }
        }
    }
}

/// Zeroes gradient components pointing out of the feasible box.
fn project_gradient_inplace(x: &[f64], grad: &mut [f64], bounds: &[(f64, f64)]) {
    for ((&xi, gi), &(lo, hi)) in x.iter().zip(grad.iter_mut()).zip(bounds) {
        if (xi <= lo && *gi > 0.0) || (xi >= hi && *gi < 0.0) {
            *gi = 0.0;
        }
    }
}

/// Two-loop recursion computing `H * grad` for the implicit inverse Hessian.
fn two_loop(pairs: &VecDeque<CurvaturePair>, grad: &[f64]) -> Vec<f64> {
    let mut q = grad.to_vec();
    if pairs.is_empty() {
        return q;
    }
    let mut alphas = vec![0.0; pairs.len()];
    for (idx, pair) in pairs.iter().enumerate().rev() {
        let a = pair.rho * dot(&pair.s, &q);
        alphas[idx] = a;
        for (qi, &yi) in q.iter_mut().zip(&pair.y) {
            *qi -= a * yi;
        }
    }
    // Initial Hessian scaling gamma = s^T y / y^T y from the newest pair.
    let newest = pairs.back().expect("non-empty");
    let gamma = dot(&newest.s, &newest.y) / dot(&newest.y, &newest.y).max(1e-300);
    for qi in &mut q {
        *qi *= gamma;
    }
    for (idx, pair) in pairs.iter().enumerate() {
        let beta = pair.rho * dot(&pair.y, &q);
        let coeff = alphas[idx] - beta;
        for (qi, &si) in q.iter_mut().zip(&pair.s) {
            *qi += coeff * si;
        }
    }
    q
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnObjective;

    /// The Rosenbrock function in `n` dimensions.
    fn rosenbrock(n: usize) -> impl Objective {
        FnObjective::new(
            n,
            |x: &[f64]| {
                (0..x.len() - 1)
                    .map(|i| 100.0 * (x[i + 1] - x[i] * x[i]).powi(2) + (1.0 - x[i]).powi(2))
                    .sum()
            },
            |x: &[f64], g: &mut [f64]| {
                g.fill(0.0);
                for i in 0..x.len() - 1 {
                    let t = x[i + 1] - x[i] * x[i];
                    g[i] += -400.0 * t * x[i] - 2.0 * (1.0 - x[i]);
                    g[i + 1] += 200.0 * t;
                }
            },
        )
    }

    #[test]
    fn solves_quadratic_exactly() {
        let obj = FnObjective::new(
            3,
            |x: &[f64]| {
                x.iter()
                    .enumerate()
                    .map(|(i, &v)| (i as f64 + 1.0) * v * v)
                    .sum()
            },
            |x: &[f64], g: &mut [f64]| {
                for (i, (gi, &xi)) in g.iter_mut().zip(x).enumerate() {
                    *gi = 2.0 * (i as f64 + 1.0) * xi;
                }
            },
        );
        let res = Lbfgs::default_config().minimize(&obj, vec![5.0, -3.0, 2.0]);
        assert!(res.converged, "termination: {:?}", res.termination);
        for xi in &res.x {
            assert!(xi.abs() < 1e-5);
        }
    }

    #[test]
    fn solves_rosenbrock_2d() {
        let obj = rosenbrock(2);
        let res = Lbfgs::new(LbfgsConfig {
            max_iters: 500,
            ..Default::default()
        })
        .minimize(&obj, vec![-1.2, 1.0]);
        assert!(res.value < 1e-8, "value: {}", res.value);
        assert!((res.x[0] - 1.0).abs() < 1e-3);
        assert!((res.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn solves_rosenbrock_10d() {
        let obj = rosenbrock(10);
        let res = Lbfgs::new(LbfgsConfig {
            max_iters: 2000,
            ..Default::default()
        })
        .minimize(&obj, vec![0.0; 10]);
        assert!(res.value < 1e-6, "value: {}", res.value);
    }

    #[test]
    fn respects_box_bounds() {
        // Unconstrained minimum at (3, 3); box is [0, 1]^2 so the solution
        // sits at the corner (1, 1).
        let obj = FnObjective::new(
            2,
            |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] - 3.0).powi(2),
            |x: &[f64], g: &mut [f64]| {
                g[0] = 2.0 * (x[0] - 3.0);
                g[1] = 2.0 * (x[1] - 3.0);
            },
        );
        let res = Lbfgs::new(LbfgsConfig {
            bounds: Some(vec![(0.0, 1.0), (0.0, 1.0)]),
            ..Default::default()
        })
        .minimize(&obj, vec![0.5, 0.5]);
        assert!((res.x[0] - 1.0).abs() < 1e-6, "x0 = {}", res.x[0]);
        assert!((res.x[1] - 1.0).abs() < 1e-6, "x1 = {}", res.x[1]);
        assert!(res.converged);
    }

    #[test]
    fn projects_infeasible_start() {
        let obj = FnObjective::new(
            1,
            |x: &[f64]| x[0] * x[0],
            |x: &[f64], g: &mut [f64]| g[0] = 2.0 * x[0],
        );
        let res = Lbfgs::new(LbfgsConfig {
            bounds: Some(vec![(1.0, 2.0)]),
            ..Default::default()
        })
        .minimize(&obj, vec![10.0]);
        assert!((res.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stops_at_stationary_start() {
        let obj = FnObjective::new(
            2,
            |x: &[f64]| x[0] * x[0] + x[1] * x[1],
            |x: &[f64], g: &mut [f64]| {
                g[0] = 2.0 * x[0];
                g[1] = 2.0 * x[1];
            },
        );
        let res = Lbfgs::default_config().minimize(&obj, vec![0.0, 0.0]);
        assert_eq!(res.iterations, 0);
        assert!(res.converged);
        assert_eq!(res.termination, Termination::GradientTolerance);
    }

    #[test]
    fn max_iterations_reported() {
        let obj = rosenbrock(2);
        let res = Lbfgs::new(LbfgsConfig {
            max_iters: 2,
            grad_tol: 1e-300,
            f_tol: 0.0,
            ..Default::default()
        })
        .minimize(&obj, vec![-1.2, 1.0]);
        assert!(!res.converged);
        assert_eq!(res.termination, Termination::MaxIterations);
        assert_eq!(res.iterations, 2);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn panics_on_dim_mismatch() {
        let obj = rosenbrock(2);
        Lbfgs::default_config().minimize(&obj, vec![0.0; 3]);
    }

    #[test]
    fn memory_one_still_converges() {
        let obj = rosenbrock(2);
        let res = Lbfgs::new(LbfgsConfig {
            memory: 1,
            max_iters: 5000,
            ..Default::default()
        })
        .minimize(&obj, vec![-1.2, 1.0]);
        assert!(res.value < 1e-6);
    }
}
