//! Numerical optimization substrate for the iFair reproduction.
//!
//! The paper trains its representation with **L-BFGS** (§III-C, citing Liu &
//! Nocedal 1989); the LFR baseline (Zemel et al. 2013) and our logistic
//! regression use the same machinery. This crate provides:
//!
//! * [`Objective`] — the problem trait (value + analytic gradient),
//! * [`lbfgs::Lbfgs`] — limited-memory BFGS with strong-Wolfe line search and
//!   optional box projection,
//! * [`adam::Adam`] and [`adam::GradientDescent`] — first-order baselines used
//!   by the ablation benches,
//! * [`numgrad`] — central-difference gradients and a gradient checker used in
//!   tests to validate every analytic gradient in the workspace.
//!
//! # Example
//!
//! ```
//! use ifair_optim::{Lbfgs, LbfgsConfig, Objective};
//!
//! /// f(x) = ||x - 3||^2, minimized at x = 3.
//! struct Quadratic;
//! impl Objective for Quadratic {
//!     fn dim(&self) -> usize { 2 }
//!     fn value(&self, x: &[f64]) -> f64 {
//!         x.iter().map(|&v| (v - 3.0).powi(2)).sum()
//!     }
//!     fn gradient(&self, x: &[f64], grad: &mut [f64]) {
//!         for (g, &v) in grad.iter_mut().zip(x) { *g = 2.0 * (v - 3.0); }
//!     }
//! }
//!
//! let result = Lbfgs::new(LbfgsConfig::default()).minimize(&Quadratic, vec![0.0, 0.0]);
//! assert!(result.converged);
//! assert!((result.x[0] - 3.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod fold;
pub mod lbfgs;
pub mod line_search;
pub mod numgrad;
pub mod problem;

pub use adam::{Adam, AdamConfig, AdamState, GradientDescent};
pub use lbfgs::{Lbfgs, LbfgsConfig};
pub use problem::{FnObjective, NumericalObjective, Objective, OptimResult, Termination};
