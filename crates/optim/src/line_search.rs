//! Strong-Wolfe line search (Nocedal & Wright, Algorithms 3.5 / 3.6).
//!
//! L-BFGS requires the curvature condition to keep its inverse-Hessian
//! approximation positive definite, hence strong Wolfe rather than plain
//! Armijo backtracking (which is also provided for the first-order methods).

use crate::problem::Objective;

/// Parameters of the strong-Wolfe search.
#[derive(Debug, Clone, Copy)]
pub struct WolfeParams {
    /// Sufficient-decrease constant (`c1`), typically `1e-4`.
    pub c1: f64,
    /// Curvature constant (`c2`), typically `0.9` for quasi-Newton methods.
    pub c2: f64,
    /// Maximum bracketing/zoom iterations.
    pub max_iters: usize,
    /// Upper bound on the step length.
    pub alpha_max: f64,
}

impl Default for WolfeParams {
    fn default() -> Self {
        WolfeParams {
            c1: 1e-4,
            c2: 0.9,
            max_iters: 30,
            alpha_max: 1e3,
        }
    }
}

/// Result of a line search.
#[derive(Debug, Clone)]
pub struct LineSearchResult {
    /// Accepted step length.
    pub alpha: f64,
    /// Objective value at the accepted point.
    pub value: f64,
    /// Gradient at the accepted point.
    pub gradient: Vec<f64>,
    /// Number of objective evaluations consumed.
    pub n_evals: usize,
}

/// 1-D view of the objective along `x + alpha * d`.
struct Phi<'a, O: Objective + ?Sized> {
    objective: &'a O,
    x: &'a [f64],
    d: &'a [f64],
    xa: Vec<f64>,
    grad: Vec<f64>,
    n_evals: usize,
}

impl<'a, O: Objective + ?Sized> Phi<'a, O> {
    fn new(objective: &'a O, x: &'a [f64], d: &'a [f64]) -> Self {
        let n = x.len();
        Phi {
            objective,
            x,
            d,
            xa: vec![0.0; n],
            grad: vec![0.0; n],
            n_evals: 0,
        }
    }

    /// Evaluates `(phi(alpha), phi'(alpha))`, caching the gradient.
    fn eval(&mut self, alpha: f64) -> (f64, f64) {
        for ((xa, &xi), &di) in self.xa.iter_mut().zip(self.x).zip(self.d) {
            *xa = xi + alpha * di;
        }
        let value = self.objective.value_and_gradient(&self.xa, &mut self.grad);
        self.n_evals += 1;
        let slope = self
            .grad
            .iter()
            .zip(self.d)
            .map(|(&g, &di)| g * di)
            .sum::<f64>();
        (value, slope)
    }
}

/// Strong-Wolfe line search along direction `d` from `x`.
///
/// `f0` and `g0` are the objective value and directional derivative at
/// `alpha = 0`; `g0` must be negative (descent direction). Returns `None`
/// when no acceptable step is found within the iteration budget.
pub fn strong_wolfe<O: Objective + ?Sized>(
    objective: &O,
    x: &[f64],
    d: &[f64],
    f0: f64,
    g0: f64,
    params: &WolfeParams,
) -> Option<LineSearchResult> {
    if g0 >= 0.0 {
        return None;
    }
    let mut phi = Phi::new(objective, x, d);
    let mut alpha_prev = 0.0;
    let mut f_prev = f0;
    let mut g_prev = g0;
    let mut alpha = 1.0_f64.min(params.alpha_max);

    for i in 0..params.max_iters {
        let (f, g) = phi.eval(alpha);
        if f > f0 + params.c1 * alpha * g0 || (i > 0 && f >= f_prev) {
            return zoom(
                &mut phi, alpha_prev, f_prev, g_prev, alpha, f, f0, g0, params,
            );
        }
        if g.abs() <= -params.c2 * g0 {
            return Some(LineSearchResult {
                alpha,
                value: f,
                gradient: phi.grad.clone(),
                n_evals: phi.n_evals,
            });
        }
        if g >= 0.0 {
            return zoom(&mut phi, alpha, f, g, alpha_prev, f_prev, f0, g0, params);
        }
        alpha_prev = alpha;
        f_prev = f;
        g_prev = g;
        alpha = (2.0 * alpha).min(params.alpha_max);
        if alpha >= params.alpha_max {
            // Evaluate at the cap once, then give up on expansion.
            let (f, g) = phi.eval(alpha);
            if f <= f0 + params.c1 * alpha * g0 && g.abs() <= -params.c2 * g0 {
                return Some(LineSearchResult {
                    alpha,
                    value: f,
                    gradient: phi.grad.clone(),
                    n_evals: phi.n_evals,
                });
            }
            return zoom(
                &mut phi, alpha_prev, f_prev, g_prev, alpha, f, f0, g0, params,
            );
        }
    }
    None
}

/// Zoom phase: the interval `[alpha_lo, alpha_hi]` brackets a point
/// satisfying the strong Wolfe conditions.
#[allow(clippy::too_many_arguments)]
fn zoom<O: Objective + ?Sized>(
    phi: &mut Phi<'_, O>,
    mut alpha_lo: f64,
    mut f_lo: f64,
    mut g_lo: f64,
    mut alpha_hi: f64,
    mut f_hi: f64,
    f0: f64,
    g0: f64,
    params: &WolfeParams,
) -> Option<LineSearchResult> {
    for _ in 0..params.max_iters {
        // Quadratic interpolation with bisection safeguard.
        let mut alpha = interpolate(alpha_lo, f_lo, g_lo, alpha_hi, f_hi);
        let lo = alpha_lo.min(alpha_hi);
        let hi = alpha_lo.max(alpha_hi);
        let width = hi - lo;
        if !(lo + 0.1 * width..=hi - 0.1 * width).contains(&alpha) {
            alpha = 0.5 * (lo + hi);
        }
        if width < 1e-16 {
            return None;
        }
        let (f, g) = phi.eval(alpha);
        if f > f0 + params.c1 * alpha * g0 || f >= f_lo {
            alpha_hi = alpha;
            f_hi = f;
        } else {
            if g.abs() <= -params.c2 * g0 {
                return Some(LineSearchResult {
                    alpha,
                    value: f,
                    gradient: phi.grad.clone(),
                    n_evals: phi.n_evals,
                });
            }
            if g * (alpha_hi - alpha_lo) >= 0.0 {
                alpha_hi = alpha_lo;
                f_hi = f_lo;
            }
            alpha_lo = alpha;
            f_lo = f;
            g_lo = g;
        }
    }
    None
}

/// Minimizer of the quadratic through `(a, fa)` with slope `ga` and `(b, fb)`.
fn interpolate(a: f64, fa: f64, ga: f64, b: f64, fb: f64) -> f64 {
    let denom = fb - fa - ga * (b - a);
    if denom.abs() < 1e-300 {
        return 0.5 * (a + b);
    }
    a - 0.5 * ga * (b - a).powi(2) / denom
}

/// Simple Armijo backtracking line search (for GD / diagnostics).
///
/// Returns the accepted `alpha`, or `None` after `max_iters` halvings.
pub fn backtracking<O: Objective + ?Sized>(
    objective: &O,
    x: &[f64],
    d: &[f64],
    f0: f64,
    g0: f64,
    c1: f64,
    max_iters: usize,
) -> Option<(f64, f64)> {
    if g0 >= 0.0 {
        return None;
    }
    let mut alpha = 1.0;
    let mut xa = vec![0.0; x.len()];
    for _ in 0..max_iters {
        for ((t, &xi), &di) in xa.iter_mut().zip(x).zip(d) {
            *t = xi + alpha * di;
        }
        let f = objective.value(&xa);
        if f <= f0 + c1 * alpha * g0 {
            return Some((alpha, f));
        }
        alpha *= 0.5;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnObjective;

    fn quadratic() -> impl Objective {
        FnObjective::new(
            1,
            |x: &[f64]| (x[0] - 2.0).powi(2),
            |x: &[f64], g: &mut [f64]| g[0] = 2.0 * (x[0] - 2.0),
        )
    }

    #[test]
    fn wolfe_conditions_hold_on_quadratic() {
        let obj = quadratic();
        let x = [0.0];
        let d = [1.0]; // descent: slope at 0 is -4
        let f0 = obj.value(&x);
        let g0 = -4.0;
        let params = WolfeParams::default();
        let res = strong_wolfe(&obj, &x, &d, f0, g0, &params).expect("line search");
        // Sufficient decrease.
        assert!(res.value <= f0 + params.c1 * res.alpha * g0);
        // Curvature.
        let slope = res.gradient[0] * d[0];
        assert!(slope.abs() <= -params.c2 * g0 + 1e-12);
    }

    #[test]
    fn rejects_ascent_direction() {
        let obj = quadratic();
        assert!(strong_wolfe(&obj, &[0.0], &[-1.0], 4.0, 4.0, &WolfeParams::default()).is_none());
    }

    #[test]
    fn backtracking_finds_decrease() {
        let obj = quadratic();
        let (alpha, f) = backtracking(&obj, &[0.0], &[1.0], 4.0, -4.0, 1e-4, 40).unwrap();
        assert!(alpha > 0.0);
        assert!(f < 4.0);
    }

    #[test]
    fn backtracking_rejects_ascent() {
        let obj = quadratic();
        assert!(backtracking(&obj, &[0.0], &[-1.0], 4.0, 4.0, 1e-4, 40).is_none());
    }

    #[test]
    fn wolfe_on_quartic_with_far_minimum() {
        // Minimum at x = 10; unit initial step must expand.
        let obj = FnObjective::new(
            1,
            |x: &[f64]| (x[0] - 10.0).powi(4),
            |x: &[f64], g: &mut [f64]| g[0] = 4.0 * (x[0] - 10.0).powi(3),
        );
        let f0 = obj.value(&[0.0]);
        let g0 = -4000.0;
        let res = strong_wolfe(&obj, &[0.0], &[1.0], f0, g0, &WolfeParams::default()).unwrap();
        assert!(res.value < f0);
        assert!(res.alpha > 0.0);
    }
}
