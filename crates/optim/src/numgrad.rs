//! Central-difference gradients and the gradient checker.
//!
//! Every analytic gradient in this workspace (iFair, LFR, logistic
//! regression) is validated against these finite differences in tests, which
//! is the standard defence against silent sign/indexing errors in
//! hand-derived backpropagation.

use crate::problem::Objective;

/// Central-difference gradient of `f` at `x` with per-coordinate step
/// `h_i = step * max(1, |x_i|)`.
pub fn central_difference<F: Fn(&[f64]) -> f64>(f: F, x: &[f64], step: f64) -> Vec<f64> {
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let h = step * x[i].abs().max(1.0);
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f(&xp);
        xp[i] = orig - h;
        let fm = f(&xp);
        xp[i] = orig;
        grad[i] = (fp - fm) / (2.0 * h);
    }
    grad
}

/// Report from [`check_gradient`].
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest relative error across coordinates.
    pub max_rel_error: f64,
    /// Coordinate attaining the largest relative error.
    pub worst_index: usize,
    /// Analytic gradient at the worst coordinate.
    pub analytic: f64,
    /// Numeric gradient at the worst coordinate.
    pub numeric: f64,
}

impl GradCheckReport {
    /// Whether the analytic gradient agrees with finite differences up to
    /// `tol` in relative error.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_error <= tol
    }
}

/// Compares the analytic gradient of `objective` at `x` against central
/// differences with step `step`.
///
/// Relative error per coordinate is
/// `|g_a - g_n| / max(1, |g_a|, |g_n|)` — absolute near zero, relative for
/// large entries.
pub fn check_gradient<O: Objective + ?Sized>(
    objective: &O,
    x: &[f64],
    step: f64,
) -> GradCheckReport {
    let mut analytic = vec![0.0; x.len()];
    objective.gradient(x, &mut analytic);
    let numeric = central_difference(|p| objective.value(p), x, step);
    let mut max_rel = 0.0;
    let mut worst = 0;
    for i in 0..x.len() {
        let denom = analytic[i].abs().max(numeric[i].abs()).max(1.0);
        let rel = (analytic[i] - numeric[i]).abs() / denom;
        if rel > max_rel {
            max_rel = rel;
            worst = i;
        }
    }
    GradCheckReport {
        max_rel_error: max_rel,
        worst_index: worst,
        analytic: analytic[worst],
        numeric: numeric[worst],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnObjective;

    #[test]
    fn central_difference_on_polynomial() {
        let g = central_difference(|x| x[0].powi(3) + 2.0 * x[1], &[2.0, 5.0], 1e-6);
        assert!((g[0] - 12.0).abs() < 1e-5);
        assert!((g[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn check_gradient_accepts_correct_gradient() {
        let obj = FnObjective::new(
            2,
            |x: &[f64]| x[0].exp() + x[0] * x[1],
            |x: &[f64], g: &mut [f64]| {
                g[0] = x[0].exp() + x[1];
                g[1] = x[0];
            },
        );
        let report = check_gradient(&obj, &[0.3, -1.2], 1e-6);
        assert!(report.passes(1e-6), "report: {report:?}");
    }

    #[test]
    fn check_gradient_rejects_wrong_gradient() {
        let obj = FnObjective::new(
            1,
            |x: &[f64]| x[0] * x[0],
            |x: &[f64], g: &mut [f64]| g[0] = 3.0 * x[0], // wrong: should be 2x
        );
        let report = check_gradient(&obj, &[1.0], 1e-6);
        assert!(!report.passes(1e-3));
        assert_eq!(report.worst_index, 0);
    }

    #[test]
    fn relative_error_is_absolute_near_zero() {
        let obj = FnObjective::new(1, |_x: &[f64]| 0.0, |_x: &[f64], g: &mut [f64]| g[0] = 1e-9);
        let report = check_gradient(&obj, &[0.0], 1e-6);
        assert!(report.passes(1e-6));
    }
}
