//! The optimization problem trait and result types.

use serde::{Deserialize, Serialize};

/// A smooth objective function with an analytic gradient.
///
/// Implementors provide `value` and `gradient`; `value_and_gradient` has a
/// default implementation that calls both but should be overridden when the
/// two share expensive intermediate state (as the iFair objective does).
pub trait Objective {
    /// Number of optimization variables.
    fn dim(&self) -> usize;

    /// Objective value at `x`.
    fn value(&self, x: &[f64]) -> f64;

    /// Writes the gradient at `x` into `grad` (length `dim()`).
    fn gradient(&self, x: &[f64], grad: &mut [f64]);

    /// Computes value and gradient together.
    fn value_and_gradient(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        self.gradient(x, grad);
        self.value(x)
    }
}

/// Adapter turning a pair of closures into an [`Objective`].
pub struct FnObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64], &mut [f64]),
{
    dim: usize,
    value: V,
    gradient: G,
}

impl<V, G> FnObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64], &mut [f64]),
{
    /// Wraps `value` and `gradient` closures over `dim` variables.
    pub fn new(dim: usize, value: V, gradient: G) -> Self {
        FnObjective {
            dim,
            value,
            gradient,
        }
    }
}

impl<V, G> Objective for FnObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64], &mut [f64]),
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&self, x: &[f64]) -> f64 {
        (self.value)(x)
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        (self.gradient)(x, grad);
    }
}

/// Wraps a value-only function with central-difference gradients.
///
/// This mirrors the reference iFair implementation, which ran scipy's
/// L-BFGS-B with `approx_grad=True`. It costs `2 * dim` function evaluations
/// per gradient, so the analytic path should be preferred outside tests.
pub struct NumericalObjective<V: Fn(&[f64]) -> f64> {
    dim: usize,
    value: V,
    step: f64,
}

impl<V: Fn(&[f64]) -> f64> NumericalObjective<V> {
    /// Wraps `value` over `dim` variables with the default step size.
    pub fn new(dim: usize, value: V) -> Self {
        NumericalObjective {
            dim,
            value,
            step: 1e-6,
        }
    }

    /// Overrides the finite-difference step.
    pub fn with_step(mut self, step: f64) -> Self {
        self.step = step;
        self
    }
}

impl<V: Fn(&[f64]) -> f64> Objective for NumericalObjective<V> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&self, x: &[f64]) -> f64 {
        (self.value)(x)
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        let mut xp = x.to_vec();
        for i in 0..self.dim {
            let h = self.step * x[i].abs().max(1.0);
            let orig = xp[i];
            xp[i] = orig + h;
            let fp = (self.value)(&xp);
            xp[i] = orig - h;
            let fm = (self.value)(&xp);
            xp[i] = orig;
            grad[i] = (fp - fm) / (2.0 * h);
        }
    }
}

/// Why an optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// Gradient norm fell below the tolerance.
    GradientTolerance,
    /// Relative objective decrease fell below the tolerance.
    FunctionTolerance,
    /// Iteration budget exhausted.
    MaxIterations,
    /// The line search could not find an acceptable step (typically means the
    /// iterate is already near-stationary or the gradient is inconsistent).
    LineSearchFailed,
}

/// Outcome of an optimization run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Infinity norm of the gradient at `x`.
    pub grad_norm: f64,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Number of objective/gradient evaluations.
    pub n_evals: usize,
    /// Whether a tolerance-based criterion was met.
    pub converged: bool,
    /// The stopping reason.
    pub termination: Termination,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_objective_delegates() {
        let obj = FnObjective::new(
            2,
            |x: &[f64]| x[0] * x[0] + x[1],
            |x: &[f64], g: &mut [f64]| {
                g[0] = 2.0 * x[0];
                g[1] = 1.0;
            },
        );
        assert_eq!(obj.dim(), 2);
        assert_eq!(obj.value(&[3.0, 1.0]), 10.0);
        let mut g = vec![0.0; 2];
        obj.gradient(&[3.0, 1.0], &mut g);
        assert_eq!(g, vec![6.0, 1.0]);
        let v = obj.value_and_gradient(&[1.0, 0.0], &mut g);
        assert_eq!(v, 1.0);
        assert_eq!(g, vec![2.0, 1.0]);
    }

    #[test]
    fn numerical_objective_matches_analytic() {
        let obj = NumericalObjective::new(3, |x: &[f64]| {
            x[0].powi(2) + 2.0 * x[1].powi(2) + x[0] * x[2]
        });
        let x = [1.0, -2.0, 0.5];
        let mut g = vec![0.0; 3];
        obj.gradient(&x, &mut g);
        // Analytic: [2x0 + x2, 4x1, x0]
        assert!((g[0] - 2.5).abs() < 1e-5);
        assert!((g[1] + 8.0).abs() < 1e-5);
        assert!((g[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn numerical_objective_custom_step() {
        let obj = NumericalObjective::new(1, |x: &[f64]| x[0].powi(2)).with_step(1e-4);
        let mut g = vec![0.0];
        obj.gradient(&[3.0], &mut g);
        assert!((g[0] - 6.0).abs() < 1e-6);
    }
}
