//! Property-based tests of the optimizers: convergence on random convex
//! quadratics, bound feasibility, and agreement between analytic and
//! numerical gradients.

use ifair_optim::{Adam, AdamConfig, FnObjective, GradientDescent, Lbfgs, LbfgsConfig};
use proptest::prelude::*;

/// A random strictly convex diagonal quadratic `Σ c_i (x_i - m_i)²` with
/// known minimum `m`.
fn quadratic(
    coeffs: Vec<f64>,
    minimum: Vec<f64>,
) -> impl ifair_optim::Objective {
    let c2 = coeffs.clone();
    let m2 = minimum.clone();
    FnObjective::new(
        coeffs.len(),
        move |x: &[f64]| {
            x.iter()
                .zip(&coeffs)
                .zip(&minimum)
                .map(|((&xi, &ci), &mi)| ci * (xi - mi) * (xi - mi))
                .sum()
        },
        move |x: &[f64], g: &mut [f64]| {
            for ((gi, &xi), (&ci, &mi)) in g.iter_mut().zip(x).zip(c2.iter().zip(&m2)) {
                *gi = 2.0 * ci * (xi - mi);
            }
        },
    )
}

fn problem() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>)> {
    (2usize..6).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.1f64..10.0, n),
            proptest::collection::vec(-5.0f64..5.0, n),
            proptest::collection::vec(-8.0f64..8.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lbfgs_finds_quadratic_minimum((coeffs, minimum, x0) in problem()) {
        let obj = quadratic(coeffs, minimum.clone());
        let res = Lbfgs::default_config().minimize(&obj, x0);
        prop_assert!(res.converged, "termination {:?}", res.termination);
        for (xi, mi) in res.x.iter().zip(&minimum) {
            prop_assert!((xi - mi).abs() < 1e-4, "{} vs {}", xi, mi);
        }
    }

    #[test]
    fn lbfgs_iterates_stay_in_box((coeffs, minimum, x0) in problem()) {
        let n = x0.len();
        let bounds = vec![(-1.0, 1.0); n];
        let obj = quadratic(coeffs, minimum.clone());
        let res = Lbfgs::new(LbfgsConfig {
            bounds: Some(bounds),
            ..Default::default()
        })
        .minimize(&obj, x0);
        for (i, xi) in res.x.iter().enumerate() {
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(xi), "x[{i}] = {xi}");
            // The constrained optimum is the clamped unconstrained one for a
            // separable quadratic.
            let expect = minimum[i].clamp(-1.0, 1.0);
            prop_assert!((xi - expect).abs() < 1e-3, "x[{i}] = {xi}, want {expect}");
        }
    }

    #[test]
    fn adam_descends_on_quadratics((coeffs, minimum, x0) in problem()) {
        let obj = quadratic(coeffs, minimum);
        let f0 = {
            use ifair_optim::Objective;
            obj.value(&x0)
        };
        let res = Adam::new(AdamConfig {
            max_iters: 300,
            ..Default::default()
        })
        .minimize(&obj, x0);
        prop_assert!(res.value <= f0 + 1e-12, "{} > {}", res.value, f0);
    }

    #[test]
    fn gradient_descent_descends((coeffs, minimum, x0) in problem()) {
        let obj = quadratic(coeffs, minimum);
        let f0 = {
            use ifair_optim::Objective;
            obj.value(&x0)
        };
        let res = GradientDescent::default().minimize(&obj, x0);
        prop_assert!(res.value <= f0 + 1e-12);
    }

    #[test]
    fn optimizers_agree_on_the_minimizer((coeffs, minimum, x0) in problem()) {
        let obj = quadratic(coeffs, minimum);
        let a = Lbfgs::default_config().minimize(&obj, x0.clone());
        let b = Adam::new(AdamConfig {
            max_iters: 5000,
            learning_rate: 0.1,
            ..Default::default()
        })
        .minimize(&obj, x0);
        for (xa, xb) in a.x.iter().zip(&b.x) {
            prop_assert!((xa - xb).abs() < 0.05, "{xa} vs {xb}");
        }
    }
}
