//! Property-style tests of the optimizers over seeded random convex
//! quadratics (the offline toolchain has no proptest): convergence, bound
//! feasibility, and agreement between optimizers.

use ifair_optim::{Adam, AdamConfig, FnObjective, GradientDescent, Lbfgs, LbfgsConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random strictly convex diagonal quadratic `Σ c_i (x_i - m_i)²` with
/// known minimum `m`.
fn quadratic(coeffs: Vec<f64>, minimum: Vec<f64>) -> impl ifair_optim::Objective {
    let c2 = coeffs.clone();
    let m2 = minimum.clone();
    FnObjective::new(
        coeffs.len(),
        move |x: &[f64]| {
            x.iter()
                .zip(&coeffs)
                .zip(&minimum)
                .map(|((&xi, &ci), &mi)| ci * (xi - mi) * (xi - mi))
                .sum()
        },
        move |x: &[f64], g: &mut [f64]| {
            for ((gi, &xi), (&ci, &mi)) in g.iter_mut().zip(x).zip(c2.iter().zip(&m2)) {
                *gi = 2.0 * ci * (xi - mi);
            }
        },
    )
}

/// Random `(coeffs, minimum, x0)` triple with 2–5 dimensions.
fn problem(rng: &mut StdRng) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = rng.gen_range(2..6usize);
    let coeffs = (0..n).map(|_| rng.gen_range(0.1..10.0)).collect();
    let minimum = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
    let x0 = (0..n).map(|_| rng.gen_range(-8.0..8.0)).collect();
    (coeffs, minimum, x0)
}

const CASES: usize = 48;

#[test]
fn lbfgs_finds_quadratic_minimum() {
    let mut rng = StdRng::seed_from_u64(201);
    for _ in 0..CASES {
        let (coeffs, minimum, x0) = problem(&mut rng);
        let obj = quadratic(coeffs, minimum.clone());
        let res = Lbfgs::default_config().minimize(&obj, x0);
        assert!(res.converged, "termination {:?}", res.termination);
        for (xi, mi) in res.x.iter().zip(&minimum) {
            assert!((xi - mi).abs() < 1e-4, "{} vs {}", xi, mi);
        }
    }
}

#[test]
fn lbfgs_iterates_stay_in_box() {
    let mut rng = StdRng::seed_from_u64(202);
    for _ in 0..CASES {
        let (coeffs, minimum, x0) = problem(&mut rng);
        let n = x0.len();
        let bounds = vec![(-1.0, 1.0); n];
        let obj = quadratic(coeffs, minimum.clone());
        let res = Lbfgs::new(LbfgsConfig {
            bounds: Some(bounds),
            ..Default::default()
        })
        .minimize(&obj, x0);
        for (i, xi) in res.x.iter().enumerate() {
            assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(xi), "x[{i}] = {xi}");
            // The constrained optimum is the clamped unconstrained one for a
            // separable quadratic.
            let expect = minimum[i].clamp(-1.0, 1.0);
            assert!((xi - expect).abs() < 1e-3, "x[{i}] = {xi}, want {expect}");
        }
    }
}

#[test]
fn adam_descends_on_quadratics() {
    let mut rng = StdRng::seed_from_u64(203);
    for _ in 0..CASES {
        let (coeffs, minimum, x0) = problem(&mut rng);
        let obj = quadratic(coeffs, minimum);
        let f0 = {
            use ifair_optim::Objective;
            obj.value(&x0)
        };
        let res = Adam::new(AdamConfig {
            max_iters: 300,
            ..Default::default()
        })
        .minimize(&obj, x0);
        assert!(res.value <= f0 + 1e-12, "{} > {}", res.value, f0);
    }
}

#[test]
fn gradient_descent_descends() {
    let mut rng = StdRng::seed_from_u64(204);
    for _ in 0..CASES {
        let (coeffs, minimum, x0) = problem(&mut rng);
        let obj = quadratic(coeffs, minimum);
        let f0 = {
            use ifair_optim::Objective;
            obj.value(&x0)
        };
        let res = GradientDescent::default().minimize(&obj, x0);
        assert!(res.value <= f0 + 1e-12);
    }
}

#[test]
fn optimizers_agree_on_the_minimizer() {
    let mut rng = StdRng::seed_from_u64(205);
    for _ in 0..CASES {
        let (coeffs, minimum, x0) = problem(&mut rng);
        let obj = quadratic(coeffs, minimum);
        let a = Lbfgs::default_config().minimize(&obj, x0.clone());
        let b = Adam::new(AdamConfig {
            max_iters: 5000,
            learning_rate: 0.1,
            ..Default::default()
        })
        .minimize(&obj, x0);
        for (xa, xb) in a.x.iter().zip(&b.x) {
            assert!((xa - xb).abs() < 0.05, "{xa} vs {xb}");
        }
    }
}
