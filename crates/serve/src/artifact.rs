//! Servable artifacts: the JSON files the registry loads and dispatches on.
//!
//! Both persistence kinds the workspace writes are servable — a full
//! [`Pipeline`] chain (`"pipeline"`) and a bare [`IFair`] model
//! (`"ifair-model"`). The envelope's `kind` tag, read via
//! [`ifair::api::peek_artifact`], picks the deserializer, so a registry can
//! mix both in one server.

use ifair::api::{peek_artifact, shape_error, CertifyError, ConfigError, FitError};
use ifair::core::par::WorkerPool;
use ifair::core::{Certificate, IFair, Precision};
use ifair::data::Dataset;
use ifair::linalg::Matrix;
use ifair::Pipeline;

/// A loaded, servable model artifact.
///
/// The model variant is boxed: an [`IFair`] carries its prototype matrix and
/// full training report inline, dwarfing the pipeline variant's `Vec`.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A full `scale → represent → model` chain ([`Pipeline::to_json`]).
    Pipeline(Pipeline),
    /// A bare iFair representation model ([`IFair::to_json`]).
    Model(Box<IFair>),
}

impl Artifact {
    /// Decodes a versioned artifact, dispatching on the envelope's `kind`
    /// tag. Unknown kinds and schema versions fail with a clear error.
    pub fn from_json(json: &str) -> Result<Artifact, FitError> {
        let info = peek_artifact(json)?;
        match info.kind.as_str() {
            "pipeline" => Ok(Artifact::Pipeline(Pipeline::from_json(json)?)),
            "ifair-model" => Ok(Artifact::Model(Box::new(IFair::from_json(json)?))),
            other => Err(FitError::Serialization(format!(
                "unsupported artifact kind `{other}` (servable kinds: `pipeline`, `ifair-model`)"
            ))),
        }
    }

    /// The artifact's kind tag, as found in its envelope.
    pub fn kind(&self) -> &'static str {
        match self {
            Artifact::Pipeline(_) => "pipeline",
            Artifact::Model(_) => "ifair-model",
        }
    }

    /// The feature width incoming rows must have.
    pub fn n_input_features(&self) -> Option<usize> {
        match self {
            Artifact::Pipeline(p) => p.n_input_features(),
            Artifact::Model(m) => Some(m.n_features()),
        }
    }

    /// Whether `predict` can succeed (the chain ends in a classifier or
    /// regressor). A bare iFair model only transforms.
    pub fn has_predictor(&self) -> bool {
        match self {
            Artifact::Pipeline(p) => p.has_predictor(),
            Artifact::Model(_) => false,
        }
    }

    /// Maps `rows` through the transform stages on `pool`, returning one
    /// output row per input row. At [`Precision::F64`] this is bit-identical
    /// to the in-process [`Pipeline::transform`] / [`IFair::transform`]
    /// calls for every pool size; at [`Precision::F32`] the iFair stage is
    /// lowered to the f32 serving kernel (tolerance-bounded against f64,
    /// still pool-size invariant — see `docs/ARCHITECTURE.md`).
    pub fn transform(
        &self,
        rows: Matrix,
        group: Vec<u8>,
        pool: Option<&WorkerPool>,
        precision: Precision,
    ) -> Result<Matrix, FitError> {
        self.check_width(&rows)?;
        match self {
            Artifact::Pipeline(p) => {
                p.transform_on_prec(&request_dataset(rows, group)?, pool, precision)
            }
            Artifact::Model(m) => match precision {
                Precision::F64 => Ok(m.transform_on(&rows, pool)),
                Precision::F32 => Ok(m.to_f32().transform_on(&rows, pool)),
            },
        }
    }

    /// Runs the full chain on `pool` and returns `(scores, decisions)` of
    /// the terminal predictor — `predict_proba` and `predict` of the
    /// in-process API, computed over one shared prefix pass. `precision`
    /// selects the iFair stage's kernel; the terminal predictor always
    /// scores in f64.
    pub fn predict(
        &self,
        rows: Matrix,
        group: Vec<u8>,
        pool: Option<&WorkerPool>,
        precision: Precision,
    ) -> Result<(Vec<f64>, Vec<f64>), FitError> {
        self.check_width(&rows)?;
        match self {
            Artifact::Pipeline(p) => {
                p.predict_scored_on_prec(&request_dataset(rows, group)?, pool, precision)
            }
            Artifact::Model(_) => Err(FitError::Config(ConfigError::new(
                "model",
                "a bare iFair model has no predictor stage; serve a pipeline or call transform",
            ))),
        }
    }

    /// Whether [`Artifact::certify`] can succeed: the artifact exposes an
    /// iFair representation space (a bare model, or a pipeline whose last
    /// transform stage is iFair behind scalers). Handlers check this before
    /// dispatch so a certify request against a bare-predictor chain is a
    /// typed 400, not a batch-time failure.
    pub fn can_certify(&self) -> bool {
        match self {
            Artifact::Pipeline(p) => p.can_certify(),
            Artifact::Model(_) => true,
        }
    }

    /// Certifies each request row: a sound bound δ on the representation
    /// distance any input within `[row − ε, row + ε]` (raw request space)
    /// can reach. Rides the same pool and precision contract as
    /// [`Artifact::transform`]; certificates are bit-identical to the
    /// in-process `Pipeline::certify_rows` / `IFair::certify_rows` calls
    /// for every pool size.
    pub fn certify(
        &self,
        rows: Matrix,
        eps: f64,
        pool: Option<&WorkerPool>,
        precision: Precision,
    ) -> Result<Vec<Certificate>, CertifyError> {
        self.check_width(&rows).map_err(CertifyError::Model)?;
        match self {
            Artifact::Pipeline(p) => p.certify_rows(&rows, eps, pool, precision),
            Artifact::Model(m) => match precision {
                Precision::F64 => m.certify_rows(&rows, eps, pool),
                Precision::F32 => m.to_f32().certify_rows(&rows, eps, pool),
            },
        }
    }

    fn check_width(&self, rows: &Matrix) -> Result<(), FitError> {
        if let Some(width) = self.n_input_features() {
            if rows.cols() != width {
                return Err(shape_error(format!(
                    "request rows have {} features but the artifact expects {width}",
                    rows.cols()
                )));
            }
        }
        Ok(())
    }
}

/// Wraps request rows in the [`Dataset`] view the estimator traits speak:
/// synthetic column names, no protected flags, no labels, and the
/// caller-supplied per-row group membership (all-zero when the request
/// omitted it — only the LFR stage reads it at inference time).
pub fn request_dataset(x: Matrix, group: Vec<u8>) -> Result<Dataset, FitError> {
    let (m, n) = x.shape();
    let group = if group.is_empty() {
        vec![0u8; m]
    } else {
        group
    };
    if group.len() != m {
        return Err(shape_error(format!(
            "request has {m} rows but {} group entries",
            group.len()
        )));
    }
    Dataset::new(
        x,
        (0..n).map(|j| format!("f{j}")).collect(),
        vec![false; n],
        None,
        group,
    )
    .map_err(FitError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifair::core::IFairConfig;

    fn toy_matrix(m: usize) -> Matrix {
        Matrix::from_rows(
            (0..m)
                .map(|i| {
                    let t = i as f64 / m as f64;
                    vec![t, 1.0 - t, (i % 2) as f64]
                })
                .collect(),
        )
        .unwrap()
    }

    fn toy_dataset(m: usize) -> Dataset {
        Dataset::new(
            toy_matrix(m),
            vec!["a".into(), "b".into(), "g".into()],
            vec![false, false, true],
            Some(
                (0..m)
                    .map(|i| f64::from(i as f64 > m as f64 / 2.0))
                    .collect(),
            ),
            (0..m).map(|i| (i % 2) as u8).collect(),
        )
        .unwrap()
    }

    fn quick_config() -> IFairConfig {
        IFairConfig {
            k: 2,
            max_iters: 15,
            n_restarts: 1,
            ..Default::default()
        }
    }

    #[test]
    fn dispatches_on_kind_and_round_trips_both_kinds() {
        let ds = toy_dataset(24);
        let pipeline = Pipeline::builder()
            .standard_scaler()
            .ifair(quick_config())
            .logistic_regression_default()
            .fit(&ds)
            .unwrap();
        let served = Artifact::from_json(&pipeline.to_json().unwrap()).unwrap();
        assert_eq!(served.kind(), "pipeline");
        assert_eq!(served.n_input_features(), Some(3));
        assert!(served.has_predictor());

        let model = IFair::fit(&ds.x, &ds.protected, &quick_config()).unwrap();
        let served = Artifact::from_json(&model.to_json().unwrap()).unwrap();
        assert_eq!(served.kind(), "ifair-model");
        assert!(!served.has_predictor());

        let err = Artifact::from_json(r#"{"schema_version":1,"kind":"mystery","payload":{}}"#)
            .unwrap_err();
        assert!(err.to_string().contains("mystery"));
    }

    #[test]
    fn transform_and_predict_match_in_process_calls_bitwise() {
        let ds = toy_dataset(24);
        let pipeline = Pipeline::builder()
            .standard_scaler()
            .ifair(quick_config())
            .logistic_regression_default()
            .fit(&ds)
            .unwrap();
        let served = Artifact::from_json(&pipeline.to_json().unwrap()).unwrap();

        // The server fabricates the same dataset view `request_dataset`
        // builds; compare against the pipeline run on that exact view.
        let view = request_dataset(ds.x.clone(), vec![]).unwrap();
        let expect = pipeline.transform(&view).unwrap();
        let got = served
            .transform(ds.x.clone(), vec![], None, Precision::F64)
            .unwrap();
        assert_eq!(got, expect);

        let (scores, decisions) = served
            .predict(ds.x.clone(), vec![], None, Precision::F64)
            .unwrap();
        assert_eq!(scores, pipeline.predict_proba(&view).unwrap());
        assert_eq!(decisions, pipeline.predict(&view).unwrap());
    }

    #[test]
    fn f32_precision_stays_within_tolerance_of_f64() {
        let ds = toy_dataset(24);
        let pipeline = Pipeline::builder()
            .standard_scaler()
            .ifair(quick_config())
            .logistic_regression_default()
            .fit(&ds)
            .unwrap();
        let served = Artifact::from_json(&pipeline.to_json().unwrap()).unwrap();

        let full = served
            .transform(ds.x.clone(), vec![], None, Precision::F64)
            .unwrap();
        let half = served
            .transform(ds.x.clone(), vec![], None, Precision::F32)
            .unwrap();
        assert_eq!(half.shape(), full.shape());
        let mut max_err = 0.0f64;
        for (a, b) in half.as_slice().iter().zip(full.as_slice()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err > 0.0, "f32 path should actually round differently");
        assert!(max_err < 1e-3, "f32 drift {max_err} exceeds tolerance");

        let (scores64, _) = served
            .predict(ds.x.clone(), vec![], None, Precision::F64)
            .unwrap();
        let (scores32, _) = served
            .predict(ds.x.clone(), vec![], None, Precision::F32)
            .unwrap();
        for (a, b) in scores32.iter().zip(&scores64) {
            assert!((a - b).abs() < 1e-3);
        }

        // A bare model artifact lowers the same way.
        let model = IFair::fit(&ds.x, &ds.protected, &quick_config()).unwrap();
        let served = Artifact::from_json(&model.to_json().unwrap()).unwrap();
        let full = served
            .transform(ds.x.clone(), vec![], None, Precision::F64)
            .unwrap();
        let half = served
            .transform(ds.x.clone(), vec![], None, Precision::F32)
            .unwrap();
        for (a, b) in half.as_slice().iter().zip(full.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn width_and_capability_errors_are_typed() {
        let ds = toy_dataset(16);
        let model = IFair::fit(&ds.x, &ds.protected, &quick_config()).unwrap();
        let served = Artifact::from_json(&model.to_json().unwrap()).unwrap();
        let narrow = Matrix::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        assert!(served
            .transform(narrow, vec![], None, Precision::F64)
            .unwrap_err()
            .to_string()
            .contains("expects 3"));
        assert!(served
            .predict(ds.x.clone(), vec![], None, Precision::F64)
            .unwrap_err()
            .to_string()
            .contains("no predictor"));
        // Group length must match the row count when provided.
        assert!(request_dataset(ds.x.clone(), vec![1u8]).is_err());
    }
}
