//! Micro-batching of concurrent inference requests.
//!
//! The reactor never runs model math itself: it enqueues a [`Job`]
//! carrying a completion callback and goes back to its event loop. A
//! single batcher thread drains the queue, coalesces whatever is pending
//! (up to `max_batch_rows` rows) into one stacked `Matrix` per
//! `(model, op)` group, runs **one** pooled forward pass on the shared
//! [`WorkerPool`], and scatters the row ranges back through each job's
//! callback (which posts a completion to the reactor and wakes it).
//! Because every stage of every artifact is row-independent, the stacked
//! pass is bit-identical to running each request alone — batching is
//! purely a throughput optimization.

use crate::metrics::Metrics;
use crate::registry::LoadedModel;
use crate::supervisor::{recover_lock, supervise, ThreadKind};
use ifair::core::par::WorkerPool;
use ifair::linalg::Matrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Which model call a job wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// Map rows through the transform stages.
    Transform,
    /// Run the full chain and score with the terminal predictor.
    Predict,
    /// Certify each row's ε-box. Carries the radius as raw bits so the op
    /// stays `Copy + Eq` and only jobs with the **same** ε coalesce — a
    /// stacked certify pass is row-independent and ε-uniform, so batching
    /// stays bit-identical to per-request calls.
    Certify {
        /// `f64::to_bits` of the (validated, finite, non-negative) radius.
        eps_bits: u64,
    },
}

/// What a completed job hands back to its connection handler.
#[derive(Debug)]
pub(crate) enum JobOutput {
    /// Transformed rows, one per input row.
    Rows(Vec<Vec<f64>>),
    /// `(predict_proba, predict)` of the terminal predictor.
    Scored {
        /// Continuous scores, one per input row.
        scores: Vec<f64>,
        /// Hard decisions, one per input row.
        decisions: Vec<f64>,
    },
    /// Per-row fairness certificates, one per input row.
    Certified(Vec<ifair::Certificate>),
}

/// Why a job came back without an output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum JobError {
    /// The batch computation failed (validation slip, trapped panic).
    Failed(String),
    /// The job's deadline budget was exhausted before compute started; the
    /// handler maps this to a 503 with `Retry-After`.
    DeadlineExceeded,
}

/// One queued inference request.
pub(crate) struct Job {
    /// The model snapshot resolved at enqueue time — a reload swapping the
    /// registry cannot invalidate a job already in flight.
    pub model: Arc<LoadedModel>,
    pub op: Op,
    /// Validated, rectangular, non-empty rows.
    pub rows: Vec<Vec<f64>>,
    /// Per-row group membership (empty = all zeros).
    pub group: Vec<u8>,
    /// Absolute compute deadline (from `X-Ifair-Deadline-Ms`), if any. A
    /// job past its deadline is shed before compute, never after.
    pub deadline: Option<Instant>,
    /// Set by the requester when it stops waiting (reply timeout, deadline,
    /// connection closed): the job is orphaned, and the batcher drops it
    /// instead of computing for — or replying to — nobody.
    pub cancelled: Arc<AtomicBool>,
    /// Completion callback. The reactor passes a closure that posts a
    /// completion message and wakes the poller; tests pass a channel
    /// sender. Must never block (the batcher thread is shared).
    pub reply: Box<dyn FnOnce(Result<JobOutput, JobError>) + Send>,
}

/// Spawns the supervised batcher thread. Returns the job sender (clone one
/// per worker) and the thread handle; the batcher exits when every sender
/// is dropped, and is respawned (restart counted in `metrics`) if a panic
/// escapes the per-batch trap.
pub(crate) fn spawn_batcher(
    pool: Arc<WorkerPool>,
    queue_capacity: usize,
    max_batch_rows: usize,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
) -> (SyncSender<Job>, JoinHandle<()>) {
    let (tx, rx) = sync_channel::<Job>(queue_capacity.max(1));
    // The receiver sits behind a mutex so the supervisor can re-enter the
    // loop after a panic; `recover_lock` absorbs the poison that panic left.
    let rx = Mutex::new(rx);
    let handle = supervise(
        "ifair-serve-batcher".into(),
        ThreadKind::Batcher,
        shutdown,
        metrics,
        move || batcher_loop(&rx, &pool, max_batch_rows.max(1)),
    );
    (tx, handle)
}

fn batcher_loop(rx: &Mutex<Receiver<Job>>, pool: &WorkerPool, max_batch_rows: usize) {
    let rx = recover_lock(rx);
    while let Ok(first) = rx.recv() {
        // Fault site: a scheduled panic here escapes the per-batch trap and
        // kills the batcher thread — exercising the supervisor respawn.
        ifair::api::faults::check_panic("serve.batcher");
        let mut total = first.rows.len();
        let mut jobs = vec![first];
        // Opportunistic coalescing: take whatever is already queued, up to
        // the row cap — no artificial latency is added waiting for peers.
        while total < max_batch_rows {
            match rx.try_recv() {
                Ok(job) => {
                    total += job.rows.len();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        // Deadline triage before any compute: orphaned jobs (whose handler
        // stopped waiting) are dropped outright, jobs past their deadline
        // are shed with a typed error while their handler is still there to
        // translate it into a 503.
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.cancelled.load(Ordering::SeqCst) {
                continue;
            }
            if job.deadline.is_some_and(|d| now >= d) {
                (job.reply)(Err(JobError::DeadlineExceeded));
                continue;
            }
            live.push(job);
        }
        for group in group_jobs(live) {
            execute_group(pool, group);
        }
    }
}

/// Groups jobs by `(model snapshot, op)`, preserving arrival order — only
/// requests against the same loaded artifact and endpoint can share a
/// forward pass.
fn group_jobs(jobs: Vec<Job>) -> Vec<Vec<Job>> {
    let mut groups: Vec<((*const LoadedModel, Op), Vec<Job>)> = Vec::new();
    for job in jobs {
        let key = (Arc::as_ptr(&job.model), job.op);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, g)) => g.push(job),
            None => groups.push((key, vec![job])),
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

/// Stacks a group into one matrix, runs one pooled pass, scatters replies.
fn execute_group(pool: &WorkerPool, mut jobs: Vec<Job>) {
    let model = Arc::clone(&jobs[0].model);
    let op = jobs[0].op;
    let sizes: Vec<usize> = jobs.iter().map(|j| j.rows.len()).collect();
    let mut stacked = Vec::with_capacity(sizes.iter().sum());
    let mut group = Vec::with_capacity(stacked.capacity());
    for (job, &size) in jobs.iter_mut().zip(&sizes) {
        // Move, don't clone: the jobs own their rows and the scatter below
        // only touches the reply channels.
        stacked.append(&mut job.rows);
        if job.group.is_empty() {
            group.extend(std::iter::repeat_n(0u8, size));
        } else {
            group.append(&mut job.group);
        }
    }

    // The handlers validated shape and capability, so failures here are
    // defensive; a panic must not kill the batcher (it would starve every
    // future request), so trap it and report a 500 instead.
    let result = catch_unwind(AssertUnwindSafe(|| {
        // Fault site: a scheduled panic here stays inside the trap and
        // becomes a per-request 500 — the batcher survives.
        ifair::api::faults::check_panic("serve.batch.compute");
        let matrix = Matrix::from_rows(stacked).map_err(|e| e.to_string())?;
        match op {
            Op::Transform => model
                .artifact
                .transform(matrix, group, Some(pool), model.precision)
                .map(BatchOutput::Matrix)
                .map_err(|e| e.to_string()),
            Op::Predict => model
                .artifact
                .predict(matrix, group, Some(pool), model.precision)
                .map(|(scores, decisions)| BatchOutput::Scored { scores, decisions })
                .map_err(|e| e.to_string()),
            Op::Certify { eps_bits } => model
                .artifact
                .certify(
                    matrix,
                    f64::from_bits(eps_bits),
                    Some(pool),
                    model.precision,
                )
                .map(BatchOutput::Certified)
                .map_err(|e| e.to_string()),
        }
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("unknown panic");
        Err(format!("internal error during batch execution: {msg}"))
    });

    match result {
        Ok(output) => scatter(jobs, &sizes, &output),
        Err(msg) => {
            for job in jobs {
                // A requester that gave up (timed out, disconnected) has
                // no one listening; skip the dead letter.
                if job.cancelled.load(Ordering::SeqCst) {
                    continue;
                }
                (job.reply)(Err(JobError::Failed(msg.clone())));
            }
        }
    }
}

/// The stacked result of one batch, before scattering.
enum BatchOutput {
    Matrix(Matrix),
    Scored {
        scores: Vec<f64>,
        decisions: Vec<f64>,
    },
    Certified(Vec<ifair::Certificate>),
}

/// Splits the stacked output back into per-job row ranges, in job order.
/// Jobs whose handler cancelled them mid-compute are skipped — their slice
/// of the output has no one left to read it.
fn scatter(jobs: Vec<Job>, sizes: &[usize], output: &BatchOutput) {
    let mut offset = 0usize;
    for (job, &size) in jobs.into_iter().zip(sizes) {
        if job.cancelled.load(Ordering::SeqCst) {
            offset += size;
            continue;
        }
        let out = match output {
            BatchOutput::Matrix(m) => {
                JobOutput::Rows((offset..offset + size).map(|i| m.row(i).to_vec()).collect())
            }
            BatchOutput::Scored { scores, decisions } => JobOutput::Scored {
                scores: scores[offset..offset + size].to_vec(),
                decisions: decisions[offset..offset + size].to_vec(),
            },
            BatchOutput::Certified(certs) => {
                JobOutput::Certified(certs[offset..offset + size].to_vec())
            }
        };
        (job.reply)(Ok(out));
        offset += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Artifact;
    use ifair::core::{IFair, IFairConfig};
    use std::path::PathBuf;

    fn loaded_model(seed: u64) -> Arc<LoadedModel> {
        let x = Matrix::from_rows(
            (0..16)
                .map(|i| vec![i as f64 / 16.0, 1.0 - i as f64 / 16.0, (i % 2) as f64])
                .collect(),
        )
        .unwrap();
        let config = IFairConfig {
            k: 2,
            max_iters: 10,
            n_restarts: 1,
            seed,
            ..Default::default()
        };
        let model = IFair::fit(&x, &[false, false, true], &config).unwrap();
        Arc::new(LoadedModel {
            name: "m".into(),
            path: PathBuf::from("in-memory"),
            artifact: Artifact::Model(Box::new(model)),
            precision: ifair::core::Precision::F64,
            generation: 1,
        })
    }

    type ReplyFn = Box<dyn FnOnce(Result<JobOutput, JobError>) + Send>;

    /// Wraps a capacity-1 channel in the callback form [`Job::reply`]
    /// takes, so tests can still block on a receiver.
    fn channel_reply() -> (ReplyFn, Receiver<Result<JobOutput, JobError>>) {
        let (tx, rx) = sync_channel(1);
        (
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
            rx,
        )
    }

    fn job(
        model: &Arc<LoadedModel>,
        rows: Vec<Vec<f64>>,
    ) -> (Job, Receiver<Result<JobOutput, JobError>>) {
        let (reply, rx) = channel_reply();
        (
            Job {
                model: Arc::clone(model),
                op: Op::Transform,
                rows,
                group: vec![],
                deadline: None,
                cancelled: Arc::new(AtomicBool::new(false)),
                reply,
            },
            rx,
        )
    }

    #[test]
    fn stacked_batch_matches_individual_transforms_bitwise() {
        let model = loaded_model(3);
        let pool = WorkerPool::new(2);
        let rows_a = vec![vec![0.1, 0.9, 0.0], vec![0.7, 0.3, 1.0]];
        let rows_b = vec![vec![0.5, 0.5, 1.0]];
        let (job_a, rx_a) = job(&model, rows_a.clone());
        let (job_b, rx_b) = job(&model, rows_b.clone());
        execute_group(&pool, vec![job_a, job_b]);

        let expect = |rows: Vec<Vec<f64>>| {
            let m = match &model.artifact {
                Artifact::Model(m) => m,
                _ => unreachable!(),
            };
            let out = m.transform(&Matrix::from_rows(rows).unwrap());
            (0..out.rows())
                .map(|i| out.row(i).to_vec())
                .collect::<Vec<_>>()
        };
        match rx_a.recv().unwrap().unwrap() {
            JobOutput::Rows(rows) => assert_eq!(rows, expect(rows_a)),
            other => panic!("unexpected output {other:?}"),
        }
        match rx_b.recv().unwrap().unwrap() {
            JobOutput::Rows(rows) => assert_eq!(rows, expect(rows_b)),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn groups_split_by_model_and_op() {
        let a = loaded_model(1);
        let b = loaded_model(2);
        let (ja, _ra) = job(&a, vec![vec![0.0; 3]]);
        let (jb, _rb) = job(&b, vec![vec![0.0; 3]]);
        let (ja2, _ra2) = job(&a, vec![vec![1.0; 3]]);
        let groups = group_jobs(vec![ja, jb, ja2]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2, "same-model jobs coalesce");
        assert_eq!(groups[1].len(), 1);
    }

    #[test]
    fn batcher_thread_drains_and_exits_on_disconnect() {
        let pool = Arc::new(WorkerPool::new(1));
        let metrics = Arc::new(Metrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, handle) = spawn_batcher(pool, 8, 64, shutdown, Arc::clone(&metrics));
        let model = loaded_model(5);
        let (job, rx) = job(&model, vec![vec![0.2, 0.8, 1.0]]);
        tx.send(job).unwrap();
        assert!(matches!(rx.recv().unwrap(), Ok(JobOutput::Rows(_))));
        drop(tx);
        handle.join().unwrap();
        assert_eq!(metrics.thread_restarts(ThreadKind::Batcher), 0);
    }

    #[test]
    fn predict_on_bare_model_reports_an_error_not_a_crash() {
        let pool = WorkerPool::new(1);
        let model = loaded_model(7);
        let (reply, rx) = channel_reply();
        execute_group(
            &pool,
            vec![Job {
                model,
                op: Op::Predict,
                rows: vec![vec![0.1, 0.2, 1.0]],
                group: vec![],
                deadline: None,
                cancelled: Arc::new(AtomicBool::new(false)),
                reply,
            }],
        );
        match rx.recv().unwrap().unwrap_err() {
            JobError::Failed(msg) => assert!(msg.contains("no predictor")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn expired_jobs_are_shed_before_compute() {
        let pool = Arc::new(WorkerPool::new(1));
        let metrics = Arc::new(Metrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, handle) = spawn_batcher(pool, 8, 64, shutdown, metrics);
        let model = loaded_model(11);
        let (mut expired, rx_expired) = job(&model, vec![vec![0.3, 0.7, 0.0]]);
        expired.deadline = Some(Instant::now() - std::time::Duration::from_millis(1));
        let (fresh, rx_fresh) = job(&model, vec![vec![0.6, 0.4, 1.0]]);
        tx.send(expired).unwrap();
        tx.send(fresh).unwrap();
        assert!(matches!(
            rx_expired.recv().unwrap(),
            Err(JobError::DeadlineExceeded)
        ));
        assert!(matches!(rx_fresh.recv().unwrap(), Ok(JobOutput::Rows(_))));
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn cancelled_jobs_are_dropped_without_a_reply() {
        let pool = Arc::new(WorkerPool::new(1));
        let metrics = Arc::new(Metrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, handle) = spawn_batcher(pool, 8, 64, shutdown, metrics);
        let model = loaded_model(13);
        let (orphan, rx_orphan) = job(&model, vec![vec![0.2, 0.8, 0.0]]);
        orphan.cancelled.store(true, Ordering::SeqCst);
        let (fresh, rx_fresh) = job(&model, vec![vec![0.9, 0.1, 1.0]]);
        tx.send(orphan).unwrap();
        tx.send(fresh).unwrap();
        // The live job completes; the orphan's channel sees only disconnect.
        assert!(matches!(rx_fresh.recv().unwrap(), Ok(JobOutput::Rows(_))));
        drop(tx);
        handle.join().unwrap();
        assert!(rx_orphan.try_recv().is_err(), "orphan got no reply");
    }
}
