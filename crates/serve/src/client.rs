//! A minimal loopback HTTP client, with keep-alive sessions and opt-in
//! retries.
//!
//! Exists so the e2e tests, the serving benchmark, and the
//! `serve_and_query` example can talk to a running server without an
//! external `curl` — and doubles as executable documentation of the wire
//! format.
//!
//! Two modes:
//! - The bare [`request`]/[`get`]/[`post`] helpers open one connection
//!   per request and send `Connection: close` (read-to-EOF framing) —
//!   simplest possible, fine for tests and one-off probes.
//! - [`Session`] keeps one connection alive across requests
//!   (`Content-Length` framing), transparently reconnecting when a
//!   reused connection turns out stale — the server may have closed it
//!   between requests (idle timeout, keep-alive cap, restart) and that
//!   must read as "reconnect and resend", never as an error, because no
//!   response can have been computed for an unsent request.
//!
//! [`RetryPolicy`] adds the client half of the failure model: bounded
//! retries with jittered exponential backoff and per-attempt socket
//! timeouts, for riding out torn responses, shed 503s, and supervisor
//! respawns — over a single [`Session`], so the happy path between
//! failures rides one warm connection. It is opt-in — the bare helpers
//! stay single-shot.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one request and returns `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    request_with(addr, method, path, &[], body, None)
}

/// [`request`] with extra headers and optional per-attempt socket timeouts.
pub fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: Option<&str>,
    timeout: Option<Duration>,
) -> std::io::Result<(u16, String)> {
    let mut stream = match timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let body = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// `GET path` against a server.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body))
}

/// Splits a raw HTTP/1.1 response into `(status, body)`, rejecting torn
/// responses whose body is shorter than the declared `Content-Length` — a
/// truncated payload must read as *malformed*, never as a short success.
fn parse_response(raw: &str) -> Option<(u16, String)> {
    let status: u16 = raw.split_whitespace().nth(1)?.parse().ok()?;
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (&raw[..i], &raw[i + 4..]),
        None => raw.find("\n\n").map(|i| (&raw[..i], &raw[i + 2..]))?,
    };
    let declared = head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case("content-length")
            .then(|| value.trim().parse::<usize>().ok())?
    });
    if declared.is_some_and(|n| body.len() != n) {
        return None;
    }
    Some((status, body.to_string()))
}

/// A keep-alive HTTP client session: one connection, many requests.
///
/// The connection is opened lazily on the first request and reused until
/// the server closes it (`Connection: close`, idle timeout, keep-alive
/// cap, restart). A send/read failure on a *reused* connection is retried
/// exactly once on a fresh connection — a stale keep-alive socket is
/// indistinguishable from one that died in the server's idle sweep, and
/// the request was never answered either way. A failure on a fresh
/// connection propagates: the server is actually unreachable.
#[derive(Debug)]
pub struct Session {
    addr: SocketAddr,
    timeout: Option<Duration>,
    stream: Option<TcpStream>,
    /// Bytes read past the previous response's end (defensive; a
    /// well-behaved request/response session never has any).
    leftover: Vec<u8>,
}

impl Session {
    /// A session against `addr` with no socket timeouts.
    pub fn new(addr: SocketAddr) -> Session {
        Session::with_timeout(addr, None)
    }

    /// A session whose connect/read/write operations all time out.
    pub fn with_timeout(addr: SocketAddr, timeout: Option<Duration>) -> Session {
        Session {
            addr,
            timeout,
            stream: None,
            leftover: Vec::new(),
        }
    }

    /// Sends `method path` and returns `(status, body)`, reusing the live
    /// connection when there is one.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let reused = self.stream.is_some();
        match self.attempt(method, path, headers, body) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                // Never leave a half-used socket behind a failed attempt.
                self.stream = None;
                self.leftover.clear();
                if reused {
                    // The reused connection was stale; one fresh retry.
                    self.attempt(method, path, headers, body)
                } else {
                    Err(e)
                }
            }
        }
    }

    /// `GET path` over the session.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, &[], None)
    }

    /// `POST path` with a JSON body over the session.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, &[], Some(body))
    }

    /// Whether a connection is currently held open.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        if self.stream.is_none() {
            let stream = match self.timeout {
                Some(t) => TcpStream::connect_timeout(&self.addr, t)?,
                None => TcpStream::connect(self.addr)?,
            };
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(self.timeout)?;
            stream.set_write_timeout(self.timeout)?;
            self.stream = Some(stream);
            self.leftover.clear();
        }
        let stream = self.stream.as_mut().expect("ensured above");
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            self.addr,
            body.len()
        );
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Connection: keep-alive\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;

        let mut buf = std::mem::take(&mut self.leftover);
        let (status, body, keep_alive, consumed) = read_one_response(stream, &mut buf)?;
        if keep_alive {
            self.leftover = buf.split_off(consumed);
        } else {
            self.stream = None;
            self.leftover.clear();
        }
        Ok((status, body))
    }
}

/// Reads exactly one `Content-Length`-framed response out of `stream`
/// (appending to `buf`), returning `(status, body, keep_alive, consumed)`.
fn read_one_response(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> std::io::Result<(u16, String, bool, usize)> {
    let mut scratch = [0u8; 16 * 1024];
    loop {
        if let Some(parsed) = frame_response(buf)? {
            return Ok(parsed);
        }
        let n = stream.read(&mut scratch)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&scratch[..n]);
    }
}

/// Tries to frame one complete response at the front of `buf`; `Ok(None)`
/// means more bytes are needed.
#[allow(clippy::type_complexity)]
fn frame_response(buf: &[u8]) -> std::io::Result<Option<(u16, String, bool, usize)>> {
    let malformed = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let Some(header_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| malformed())?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(malformed)?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| malformed())?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let total = header_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = String::from_utf8(buf[header_end + 4..total].to_vec()).map_err(|_| malformed())?;
    Ok(Some((status, body, keep_alive, total)))
}

/// Bounded retry with jittered exponential backoff.
///
/// A request is retried on transport errors (connect refused, torn/short
/// response, per-attempt timeout) and on shed `503`s; any other status is a
/// *valid answer* and is returned as-is. Jitter is deterministic per policy
/// seed, so tests of the retry path replay exactly.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before attempt `n+1` starts at `base_backoff * 2^(n-1)`...
    pub base_backoff: Duration,
    /// ...and is capped here.
    pub max_backoff: Duration,
    /// Per-attempt connect/read/write timeout.
    pub attempt_timeout: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            attempt_timeout: Duration::from_secs(10),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Sends `method path` with `headers`/`body` under this policy, over
    /// one keep-alive [`Session`] (so back-to-back attempts — and callers
    /// that loop — reuse the warm connection instead of a fresh TCP
    /// handshake per try). Returns the last transport error if every
    /// attempt fails.
    pub fn request(
        &self,
        addr: SocketAddr,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let mut session = Session::with_timeout(addr, Some(self.attempt_timeout));
        self.request_over(&mut session, method, path, headers, body)
    }

    /// [`RetryPolicy::request`] over a caller-held [`Session`], for callers
    /// issuing many requests that should all share one connection.
    pub fn request_over(
        &self,
        session: &mut Session,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let mut jitter = self.seed;
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 1..=self.max_attempts.max(1) {
            if attempt > 1 {
                std::thread::sleep(self.backoff(attempt, &mut jitter));
            }
            match session.request(method, path, headers, body) {
                // A shed 503 is the server telling us to come back shortly —
                // the one *valid* response worth retrying.
                Ok((503, body)) if attempt < self.max_attempts => {
                    last_err = Some(std::io::Error::other(format!("shed with 503: {body}")));
                }
                Ok(reply) => return Ok(reply),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("no attempts were made")))
    }

    /// The sleep before `attempt` (2-based): exponential in the attempt
    /// index, capped, then scaled by a jitter factor in `[0.5, 1.0]`.
    fn backoff(&self, attempt: u32, jitter: &mut u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (attempt - 2).min(16))
            .min(self.max_backoff);
        // SplitMix64 step: cheap, seedable, and good enough to decorrelate
        // concurrent clients.
        *jitter = jitter.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *jitter;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let factor = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        exp.mul_f64(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let (status, body) =
            parse_response("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hi");
        assert!(parse_response("garbage").is_none());
    }

    #[test]
    fn torn_responses_read_as_malformed_not_short_success() {
        // Declared 11 bytes, delivered 5: must not parse.
        assert!(parse_response("HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n{\"ok\"").is_none());
        // No Content-Length at all: accepted as-is (read-to-EOF framing).
        assert!(parse_response("HTTP/1.1 200 OK\r\n\r\nhi").is_some());
    }

    #[test]
    fn frame_response_waits_for_the_full_body_and_reads_connection() {
        assert!(
            frame_response(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhel")
                .unwrap()
                .is_none()
        );
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhelloEXTRA";
        let (status, body, keep_alive, consumed) = frame_response(raw).unwrap().unwrap();
        assert_eq!((status, body.as_str(), keep_alive), (200, "hello", true));
        assert_eq!(consumed, raw.len() - "EXTRA".len());
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
        let (status, _, keep_alive, _) = frame_response(raw).unwrap().unwrap();
        assert_eq!(status, 503);
        assert!(!keep_alive, "Connection: close must end the session");
    }

    #[test]
    fn backoff_grows_exponentially_is_capped_and_jittered() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(450),
            seed: 7,
            ..RetryPolicy::default()
        };
        let mut jitter = policy.seed;
        let b2 = policy.backoff(2, &mut jitter);
        let b3 = policy.backoff(3, &mut jitter);
        let b4 = policy.backoff(4, &mut jitter);
        // Jitter scales each step into [0.5, 1.0] of the exponential value.
        assert!(b2 >= Duration::from_millis(50) && b2 <= Duration::from_millis(100));
        assert!(b3 >= Duration::from_millis(100) && b3 <= Duration::from_millis(200));
        // 100ms * 4 = 400ms... but attempt 4 would be 400, capped at 450.
        assert!(b4 >= Duration::from_millis(200) && b4 <= Duration::from_millis(450));
        // Same seed, same sleeps: the stream is deterministic.
        let mut replay = policy.seed;
        assert_eq!(policy.backoff(2, &mut replay), b2);
        assert_eq!(policy.backoff(3, &mut replay), b3);
        assert_eq!(policy.backoff(4, &mut replay), b4);
    }

    #[test]
    fn retries_are_bounded_when_nobody_listens() {
        // A port with no listener: every attempt fails fast with a transport
        // error, and the policy gives up after max_attempts.
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            attempt_timeout: Duration::from_millis(200),
            seed: 1,
        };
        assert!(policy.request(addr, "GET", "/healthz", &[], None).is_err());
    }
}
