//! A minimal loopback HTTP client.
//!
//! Exists so the e2e tests, the serving benchmark, and the
//! `serve_and_query` example can talk to a running server without an
//! external `curl` — and doubles as executable documentation of the wire
//! format. One request per connection, matching the server's
//! `Connection: close` discipline.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Sends one request and returns `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// `GET path` against a server.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body))
}

/// Splits a raw HTTP/1.1 response into `(status, body)`.
fn parse_response(raw: &str) -> Option<(u16, String)> {
    let status: u16 = raw.split_whitespace().nth(1)?.parse().ok()?;
    let body = match raw.find("\r\n\r\n") {
        Some(i) => &raw[i + 4..],
        None => raw.find("\n\n").map(|i| &raw[i + 2..])?,
    };
    Some((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let (status, body) =
            parse_response("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hi");
        assert!(parse_response("garbage").is_none());
    }
}
