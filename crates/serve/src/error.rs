//! The serving crate's typed error.

use ifair::api::FitError;

/// Everything that can go wrong bringing a server up or reloading artifacts.
///
/// Request-time failures never surface here — they become HTTP status codes
/// on the wire; `ServeError` covers the operator-facing lifecycle (binding
/// sockets, reading artifact files, decoding models).
#[derive(Debug)]
pub enum ServeError {
    /// Socket or file I/O failed; the string names what was being touched.
    Io {
        /// What the server was doing (e.g. the path being read).
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// An artifact file exists but does not decode into a servable model.
    Artifact {
        /// Path of the offending artifact file.
        path: String,
        /// The decode failure.
        source: FitError,
    },
    /// The server or registry configuration is unusable.
    Config(String),
}

impl ServeError {
    /// Wraps an I/O error with the path/operation it occurred on.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> ServeError {
        ServeError::Io {
            context: context.into(),
            source,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Artifact { path, source } => {
                write!(f, "cannot load artifact `{path}`: {source}")
            }
            ServeError::Config(msg) => write!(f, "invalid serving configuration: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Artifact { source, .. } => Some(source),
            ServeError::Config(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_failing_piece() {
        let e = ServeError::io(
            "reading model.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("model.json"));
        let e = ServeError::Config("no models".into());
        assert!(e.to_string().contains("no models"));
    }
}
