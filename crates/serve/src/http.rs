//! A deliberately small HTTP/1.1 layer over `std::net`.
//!
//! The offline toolchain has no hyper/axum, and the server needs only a
//! sliver of the protocol: parse one request (method, path, headers,
//! `Content-Length`-delimited body) and write one response, then close the
//! connection (`Connection: close` on every reply). Chunked encoding,
//! keep-alive, and multipart are out of scope by design — `curl` and every
//! HTTP client library speak this subset natively.

use std::io::{BufRead, Write};

/// Upper bound on request bodies — far above any sane inference batch, low
/// enough that a misbehaving client cannot balloon server memory.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Upper bound on the header section (request line + headers).
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path + optional query, no percent-decoding).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order, names as sent,
    /// values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8 text, or an error message suitable for a 400.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("request body is not valid UTF-8".into()))
    }

    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed mid-read.
    Io(std::io::Error),
    /// The peer closed the connection before sending a request line.
    Closed,
    /// The bytes on the wire are not the HTTP subset this server speaks.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    TooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error reading request: {e}"),
            HttpError::Closed => write!(f, "connection closed before a request arrived"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request from `reader` (a buffered socket).
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    // Fault site: a scheduled stall here simulates a slow client trickling
    // its request in (no-op outside `fault-injection` builds).
    ifair::api::faults::check_delay("serve.conn.read");
    // Hard-cap the header section at the reader level: `read_line` buffers
    // until it sees a newline, so without the `take` a client streaming
    // gigabytes of newline-free bytes would grow a worker's memory without
    // limit before any length check could run. Hitting the cap makes the
    // reads below see EOF, which the existing error paths handle.
    let mut head = <&mut _ as std::io::Read>::take(&mut *reader, MAX_HEADER_BYTES as u64);
    let mut line = String::new();
    let n = head.read_line(&mut line)?;
    if n == 0 {
        return Err(HttpError::Closed);
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), p.to_string(), v)
        }
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line: {:?}",
                line.trim_end()
            )))
        }
    };
    let _ = version;

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        let n = head.read_line(&mut header)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed (or header section too large) mid-headers".into(),
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().map_err(|_| {
                    HttpError::Malformed(format!("bad Content-Length: {:?}", value.trim()))
                })?;
            }
            headers.push((name.to_string(), value.trim().to_string()));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// The reason phrase of the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one complete response (status line, `Content-Length`,
/// `Connection: close`, body) and flushes.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with(stream, status, content_type, &[], body)
}

/// [`write_response`] with extra `(name, value)` headers (e.g.
/// `Retry-After` on a shed 503).
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        status_reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    // Fault site: a scheduled torn write truncates the body mid-stream and
    // drops the connection — the client must treat the response as garbage,
    // never as a short-but-valid payload (Content-Length disagrees).
    if ifair::api::faults::check_torn("serve.conn.write") {
        let half = body.len() / 2;
        stream.write_all(&body[..half])?;
        stream.flush()?;
        return Err(std::io::Error::other("injected torn write"));
    }
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes().to_vec())))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /v1/models/m/transform HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/models/m/transform");
        assert_eq!(req.body_utf8().unwrap(), "hello");
    }

    #[test]
    fn parses_get_without_body_and_tolerates_lf_only() {
        let req = parse("GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn content_length_is_case_insensitive() {
        let req = parse("POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nok").unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn headers_are_captured_and_looked_up_case_insensitively() {
        let req =
            parse("POST / HTTP/1.1\r\nX-Ifair-Deadline-Ms: 250\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
        assert_eq!(req.header("x-ifair-deadline-ms"), Some("250"));
        assert_eq!(req.header("X-IFAIR-DEADLINE-MS"), Some("250"));
        assert_eq!(req.header("content-length"), Some("2"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(parse(&huge), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn newline_free_floods_are_cut_off_at_the_header_cap() {
        // A request line with no newline at all must fail once the cap is
        // reached instead of buffering the whole stream.
        let flood = "A".repeat(MAX_HEADER_BYTES * 2);
        assert!(matches!(parse(&flood), Err(HttpError::Malformed(_))));
        // Same for an endless header after a valid request line.
        let flood = format!(
            "POST / HTTP/1.1\r\nX-Junk: {}",
            "j".repeat(MAX_HEADER_BYTES * 2)
        );
        assert!(matches!(parse(&flood), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn response_carries_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_land_between_length_and_close() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            503,
            "application/json",
            &[("Retry-After", "1".to_string())],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn gateway_timeout_has_a_reason_phrase() {
        assert_eq!(status_reason(504), "Gateway Timeout");
    }
}
