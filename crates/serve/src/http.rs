//! A deliberately small HTTP/1.1 layer for the event-driven reactor.
//!
//! The offline toolchain has no hyper/axum, and the server needs only a
//! sliver of the protocol: incrementally parse requests (method, path,
//! headers, `Content-Length`-delimited body) out of a per-connection
//! byte buffer, and append framed responses to a per-connection output
//! buffer. Keep-alive and pipelining are supported; chunked encoding
//! and multipart are out of scope by design — `curl` and every HTTP
//! client library speak this subset natively.
//!
//! Parsing is **zero-copy**: [`parse_request`] returns a [`RequestRef`]
//! whose method, path, header, and body slices all borrow from the
//! connection's read buffer. Nothing is allocated per request except
//! the small header `Vec`; request bodies go to `serde` as a borrowed
//! `&str` without an intermediate `String`.

use std::io::Write;

/// Upper bound on request bodies — far above any sane inference batch, low
/// enough that a misbehaving client cannot balloon server memory.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Upper bound on the header section (request line + headers). A buffer
/// that grows past this without completing its header section is a
/// flood, and the connection is rejected.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// One parsed HTTP request, borrowing from the connection read buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRef<'a> {
    /// Request method as sent (`GET`, `POST`, ...).
    pub method: &'a str,
    /// Request target as sent (path + optional query, no percent-decoding).
    pub path: &'a str,
    /// Whether the request line said `HTTP/1.1` (drives the keep-alive
    /// default; `HTTP/1.0` defaults to close).
    pub version_11: bool,
    /// Header `(name, value)` pairs in arrival order, names as sent,
    /// values trimmed.
    pub headers: Vec<(&'a str, &'a str)>,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: &'a [u8],
}

impl<'a> RequestRef<'a> {
    /// The body as UTF-8 text, or an error message suitable for a 400.
    pub fn body_utf8(&self) -> Result<&'a str, HttpError> {
        std::str::from_utf8(self.body)
            .map_err(|_| HttpError::Malformed("request body is not valid UTF-8".into()))
    }

    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&'a str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| *v)
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version_11,
        }
    }
}

/// Why bytes on the wire could not become a request.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes are not the HTTP subset this server speaks.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    TooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Finds the next `\n`, returning the line before it (with a trailing
/// `\r` trimmed) and the index one past the newline.
fn next_line(buf: &[u8], from: usize) -> Option<(&[u8], usize)> {
    let nl = buf[from..].iter().position(|&b| b == b'\n')? + from;
    let mut line = &buf[from..nl];
    if let [rest @ .., b'\r'] = line {
        line = rest;
    }
    Some((line, nl + 1))
}

/// Tries to parse one complete request from the front of `buf`.
///
/// Returns:
/// - `Ok(Some((request, consumed)))` — a full request was present; the
///   caller advances its buffer cursor by `consumed` bytes *after* it is
///   done with the borrowed [`RequestRef`].
/// - `Ok(None)` — the bytes so far are a valid prefix; read more.
/// - `Err(_)` — the bytes can never become a request this server
///   accepts (malformed, header flood, oversized body); the caller
///   answers 400/413 and closes.
///
/// Tolerates bare-`LF` line endings alongside `CRLF`.
pub fn parse_request(buf: &[u8]) -> Result<Option<(RequestRef<'_>, usize)>, HttpError> {
    let header_cap_hit = |upto: usize| upto > MAX_HEADER_BYTES;

    let Some((line, mut pos)) = next_line(buf, 0) else {
        if header_cap_hit(buf.len()) {
            return Err(HttpError::Malformed(
                "header section exceeds the size cap".into(),
            ));
        }
        return Ok(None);
    };
    let line = std::str::from_utf8(line)
        .map_err(|_| HttpError::Malformed("request line is not valid UTF-8".into()))?;
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => (m, p, v),
        _ => return Err(HttpError::Malformed(format!("bad request line: {line:?}"))),
    };
    let version_11 = version == "HTTP/1.1";

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        if header_cap_hit(pos) {
            return Err(HttpError::Malformed(
                "header section exceeds the size cap".into(),
            ));
        }
        let Some((line, next)) = next_line(buf, pos) else {
            if header_cap_hit(buf.len()) {
                return Err(HttpError::Malformed(
                    "header section exceeds the size cap".into(),
                ));
            }
            return Ok(None);
        };
        pos = next;
        if line.is_empty() {
            break;
        }
        let line = std::str::from_utf8(line)
            .map_err(|_| HttpError::Malformed("header line is not valid UTF-8".into()))?;
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| HttpError::Malformed(format!("bad Content-Length: {value:?}")))?;
            }
            headers.push((name, value));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(content_length));
    }
    let total = pos + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        RequestRef {
            method,
            path,
            version_11,
            headers,
            body: &buf[pos..total],
        },
        total,
    )))
}

/// The reason phrase of the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Appends one complete framed response (status line, `Content-Type`,
/// `Content-Length`, extra headers, `Connection: keep-alive|close`,
/// body) to `out`. The reactor flushes `out` as the socket allows.
pub fn append_response(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    keep_alive: bool,
    body: &[u8],
) {
    // io::Write on Vec<u8> is infallible.
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        status_reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    out.extend_from_slice(if keep_alive {
        b"Connection: keep-alive\r\n\r\n"
    } else {
        b"Connection: close\r\n\r\n"
    });
    out.extend_from_slice(body);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Option<(RequestRef<'_>, usize)>, HttpError> {
        parse_request(raw.as_bytes())
    }

    fn parse_one(raw: &str) -> (RequestRef<'_>, usize) {
        parse(raw).unwrap().expect("complete request")
    }

    #[test]
    fn parses_post_with_body_and_reports_consumed_length() {
        let raw =
            "POST /v1/models/m/transform HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let (req, consumed) = parse_one(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/models/m/transform");
        assert!(req.version_11);
        assert_eq!(req.body_utf8().unwrap(), "hello");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn parses_get_without_body_and_tolerates_lf_only() {
        let (req, consumed) = parse_one("GET /healthz HTTP/1.1\nHost: x\n\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert_eq!(consumed, "GET /healthz HTTP/1.1\nHost: x\n\n".len());
    }

    #[test]
    fn incomplete_prefixes_ask_for_more_bytes() {
        assert!(parse("").unwrap().is_none());
        assert!(parse("POST / HTT").unwrap().is_none());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n")
            .unwrap()
            .is_none());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel")
            .unwrap()
            .is_none());
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let (first, consumed) = parse_one(raw);
        assert_eq!(first.path, "/a");
        let rest = &raw[consumed..];
        let (second, consumed2) = parse_one(rest);
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"hi");
        let (third, consumed3) = parse_one(&rest[consumed2..]);
        assert_eq!(third.path, "/c");
        assert_eq!(consumed + consumed2 + consumed3, raw.len());
    }

    #[test]
    fn content_length_is_case_insensitive() {
        let (req, _) = parse_one("POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nok");
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn headers_are_captured_and_looked_up_case_insensitively() {
        let (req, _) =
            parse_one("POST / HTTP/1.1\r\nX-Ifair-Deadline-Ms: 250\r\nContent-Length: 2\r\n\r\nok");
        assert_eq!(req.header("x-ifair-deadline-ms"), Some("250"));
        assert_eq!(req.header("X-IFAIR-DEADLINE-MS"), Some("250"));
        assert_eq!(req.header("content-length"), Some("2"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_header() {
        let (req, _) = parse_one("GET / HTTP/1.1\r\n\r\n");
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
        let (req, _) = parse_one("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive());
        let (req, _) = parse_one("GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive(), "HTTP/1.0 defaults to close");
        let (req, _) = parse_one("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(req.keep_alive());
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(parse(&huge), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn newline_free_floods_are_cut_off_at_the_header_cap() {
        // A request line with no newline at all must fail once the cap is
        // reached instead of buffering the stream forever.
        let flood = "A".repeat(MAX_HEADER_BYTES * 2);
        assert!(matches!(parse(&flood), Err(HttpError::Malformed(_))));
        // Same for an endless header after a valid request line.
        let flood = format!(
            "POST / HTTP/1.1\r\nX-Junk: {}",
            "j".repeat(MAX_HEADER_BYTES * 2)
        );
        assert!(matches!(parse(&flood), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn response_carries_length_and_connection_disposition() {
        let mut out = Vec::new();
        append_response(
            &mut out,
            200,
            "application/json",
            &[],
            true,
            b"{\"ok\":true}",
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        append_response(&mut out, 200, "application/json", &[], false, b"{}");
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close\r\n"));
    }

    #[test]
    fn extra_headers_land_between_length_and_close() {
        let mut out = Vec::new();
        append_response(
            &mut out,
            503,
            "application/json",
            &[("Retry-After", "1".to_string())],
            false,
            b"{}",
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn new_status_codes_have_reason_phrases() {
        assert_eq!(status_reason(504), "Gateway Timeout");
        assert_eq!(status_reason(429), "Too Many Requests");
    }
}
