//! # `ifair-serve` — online inference for fitted iFair artifacts
//!
//! The workspace can fit and persist schema-versioned [`ifair::Pipeline`]
//! and [`ifair::core::IFair`] artifacts; this crate serves them over HTTP:
//!
//! | endpoint | effect |
//! |----------|--------|
//! | `POST /v1/models/{name}/transform` | map rows through the transform stages |
//! | `POST /v1/models/{name}/predict`   | full chain + terminal predictor scores |
//! | `GET /healthz`                     | liveness + loaded model names |
//! | `GET /metrics`                     | Prometheus text: counts, p50/p99 latency |
//! | `POST /admin/reload`               | re-read every artifact file, swap atomically |
//!
//! The stack is `std`-only (no tokio/hyper — crates.io is unreachable from
//! this build environment): a single **reactor** thread multiplexes every
//! connection over a level-triggered readiness poller (`epoll(7)` on
//! Linux, `poll(2)` elsewhere; raw syscalls behind one scoped `unsafe`
//! module). Sockets are nonblocking; requests are parsed **zero-copy**
//! out of per-connection reusable buffers; HTTP/1.1 keep-alive and
//! pipelining are first-class, with responses always in request order. A
//! single batcher thread coalesces concurrent requests into one stacked
//! matrix per `(model, op)` before **one** forward pass on the shared
//! [`ifair::core::par::WorkerPool`]. Every stage is row-independent, so
//! micro-batching — and the pool size — never changes a single bit of any
//! response relative to the in-process `Pipeline::transform` / `predict`
//! calls.
//!
//! Overload degrades, it never corrupts: per-model admission control
//! answers `429` with `Retry-After`, a full job queue or connection cap
//! answers `503`, per-request deadlines (`X-Ifair-Deadline-Ms`) shed work
//! whose budget is already spent, and both long-lived threads respawn
//! under supervision if a panic escapes.
//!
//! Hot reload swaps the registry map behind an `RwLock`; requests in flight
//! hold `Arc` snapshots of the model they resolved, so a reload never drops
//! or garbles a response.
//!
//! ```no_run
//! use ifair_serve::{ModelRegistry, ModelSpec, Server, ServerConfig};
//!
//! let registry = ModelRegistry::load(vec![ModelSpec::parse("credit=model.json")?])?;
//! let server = Server::bind("127.0.0.1:8080", registry, ServerConfig::default())?;
//! println!("serving on {} ({})", server.addr(), server.backend_name());
//! server.spawn().wait();
//! # Ok::<(), ifair_serve::ServeError>(())
//! ```
//!
//! The `ifair` binary wraps this as `ifair serve --model path.json`; see
//! `docs/SERVING.md` for the full operations runbook.

#![deny(unsafe_code)] // relaxed only inside `poll::sys` (raw epoll/poll syscalls)
#![warn(missing_docs)]

pub mod artifact;
mod batch;
pub mod client;
pub mod error;
pub mod http;
pub mod metrics;
mod poll;
mod reactor;
pub mod registry;
pub mod server;
pub mod supervisor;

pub use artifact::Artifact;
pub use error::ServeError;
pub use ifair::core::Precision;
pub use metrics::Metrics;
pub use poll::PollBackend;
pub use registry::{LoadedModel, ModelRegistry, ModelSpec, ReloadReport};
pub use server::{Server, ServerConfig, ServerHandle};
