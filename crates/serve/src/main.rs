//! The `ifair` command-line front end.
//!
//! ```sh
//! # Serve one or more fitted artifacts:
//! ifair serve --model credit=model.json --addr 127.0.0.1:8080 --threads 4
//!
//! # Write a small demo pipeline artifact (used by the CI smoke job and the
//! # serving guide in the README):
//! ifair demo-artifact demo.json
//!
//! # Demonstrate crash-safe training: fit, "crash" mid-fit, resume from the
//! # checkpoint artifact, and verify the result is bit-identical:
//! ifair checkpoint-demo demo-checkpoint.json
//!
//! # Convert data into the sharded binary dataset format and look inside:
//! ifair convert --csv records.csv --out data --shard-rows 100000
//! ifair convert --generate 10000000,12,7 --out big
//! ifair inspect big.00000.ifb
//!
//! # Certify an artifact offline: per-row (ε, δ) fairness certificates and
//! # the certified fraction at a threshold grid:
//! ifair certify --model demo.json --eps 0.01,0.05 --delta 0.1,0.25
//! ```

use ifair::core::par::WorkerPool;
use ifair::core::{FitStrategy, IFair, IFairConfig};
use ifair::data::binfmt::{read_shard_header, BinDatasetWriter};
use ifair::data::generators::large::{LargeScale, LargeScaleConfig};
use ifair::data::{ChunkedCsvReader, DataError, Dataset};
use ifair::linalg::Matrix;
use ifair::Pipeline;
use ifair_serve::registry::read_artifact;
use ifair_serve::{
    Artifact, ModelRegistry, ModelSpec, PollBackend, ServeError, Server, ServerConfig,
};
use std::process::ExitCode;

const USAGE: &str = "usage:
  ifair serve --model [name=]path.json[@f32] [--model ...] [options]
              (run `ifair serve --help` for every serving flag)
  ifair demo-artifact <out.json>
  ifair checkpoint-demo <checkpoint.json>
  ifair convert (--csv <in.csv> | --generate M[,N_NUMERIC[,SEED]])
                --out <stem> [--shard-rows N]
  ifair inspect <shard.ifb>
  ifair certify --model [name=]path.json[@f32] --eps E[,E2,...]
                [--delta D[,D2,...]] [--csv <rows.csv>] [--threads N]

`checkpoint-demo` runs a mini-batch fit that checkpoints every epoch to the
given path (atomically), simulates a crash partway, resumes from the saved
checkpoint, and verifies the resumed model is bit-identical.
`convert` streams a numeric CSV (or the seeded large-scale generator) into
sharded `.ifb` binary dataset files (`{stem}.{index:05}.ifb`) with O(chunk)
memory; `inspect` prints one shard's header without reading its payload.
`certify` computes per-row individual-fairness certificates for an artifact
offline: for every radius in --eps it bounds, soundly, how far any input
within that L-inf ball can move in representation space, and reports the
certified fraction at each --delta threshold. Rows come from --csv; without
it the built-in 3-feature demo rows are used (matching `demo-artifact`).";

/// `ifair serve --help`. Every flag listed here must be documented in
/// `docs/SERVING.md` — CI's doc-lint step diffs the two.
const SERVE_HELP: &str = "ifair serve — event-driven HTTP inference server

usage:
  ifair serve --model [name=]path.json[@f32] [--model ...] [options]

options:
  --model [name=]path.json[@f32]   artifact to serve (repeatable; the name
                                   defaults to the file stem; a @f32 suffix
                                   serves that model's iFair transform in
                                   single precision — artifacts stay f64 on
                                   disk)
  --addr HOST:PORT                 listen address (default 127.0.0.1:8080;
                                   port 0 picks an ephemeral port)
  --addr-file PATH                 write the bound address to PATH once
                                   listening (ephemeral-port discovery for
                                   scripts)
  --threads N                      forward-pass worker-pool lanes
                                   (default 0 = all hardware threads)
  --queue-capacity N               bounded job queue between the reactor and
                                   the batcher; a full queue answers 503
                                   (default 128)
  --max-batch-rows N               row cap of one coalesced micro-batch
                                   (default 512)
  --max-connections N              open-connection cap; connections over it
                                   are shed with 503 at accept
                                   (default 1024; 0 = unlimited)
  --keep-alive-requests N          requests served per keep-alive connection
                                   before the server closes it
                                   (default 0 = unlimited)
  --admission-per-model N          per-model in-flight request cap; requests
                                   over it answer 429 with Retry-After
                                   (default 0 = unlimited)
  --poll-backend auto|epoll|poll   readiness backend (default auto: epoll on
                                   Linux, poll(2) elsewhere)
  --help                           print this help

Requests may carry an X-Ifair-Deadline-Ms header: a total budget in
milliseconds from first byte; work whose budget expires is shed with 503
before compute. See docs/SERVING.md for the operations runbook (wire
format, degradation ladder, every /metrics series, tuning).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("demo-artifact") => demo_artifact(&args[1..]),
        Some("checkpoint-demo") => checkpoint_demo(&args[1..]),
        Some("convert") => convert(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("certify") => certify(&args[1..]),
        _ => Err(ServeError::Config(format!(
            "unknown or missing subcommand\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ifair: {e}");
            ExitCode::from(2)
        }
    }
}

/// Parsed `serve` flags.
struct ServeArgs {
    specs: Vec<ModelSpec>,
    addr: String,
    addr_file: Option<String>,
    config: ServerConfig,
    help: bool,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, ServeError> {
    let mut parsed = ServeArgs {
        specs: Vec::new(),
        addr: "127.0.0.1:8080".into(),
        addr_file: None,
        config: ServerConfig::default(),
        help: false,
    };
    let mut iter = args.iter();
    let value = |flag: &str, iter: &mut std::slice::Iter<'_, String>| {
        iter.next()
            .cloned()
            .ok_or_else(|| ServeError::Config(format!("{flag} needs a value")))
    };
    let parse_usize = |flag: &str, raw: String| {
        raw.parse::<usize>()
            .map_err(|_| ServeError::Config(format!("{flag} expects an integer, got `{raw}`")))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--model" => parsed
                .specs
                .push(ModelSpec::parse(&value("--model", &mut iter)?)?),
            "--addr" => parsed.addr = value("--addr", &mut iter)?,
            "--addr-file" => parsed.addr_file = Some(value("--addr-file", &mut iter)?),
            "--threads" => {
                parsed.config.n_threads = parse_usize("--threads", value("--threads", &mut iter)?)?
            }
            "--queue-capacity" => {
                parsed.config.queue_capacity =
                    parse_usize("--queue-capacity", value("--queue-capacity", &mut iter)?)?
            }
            "--max-batch-rows" => {
                parsed.config.max_batch_rows =
                    parse_usize("--max-batch-rows", value("--max-batch-rows", &mut iter)?)?
            }
            "--max-connections" => {
                parsed.config.max_connections =
                    parse_usize("--max-connections", value("--max-connections", &mut iter)?)?
            }
            "--keep-alive-requests" => {
                parsed.config.keep_alive_requests = parse_usize(
                    "--keep-alive-requests",
                    value("--keep-alive-requests", &mut iter)?,
                )?
            }
            "--admission-per-model" => {
                parsed.config.admission_per_model = parse_usize(
                    "--admission-per-model",
                    value("--admission-per-model", &mut iter)?,
                )?
            }
            "--poll-backend" => {
                let raw = value("--poll-backend", &mut iter)?;
                parsed.config.backend = match raw.as_str() {
                    "auto" => PollBackend::Auto,
                    "epoll" => PollBackend::Epoll,
                    "poll" => PollBackend::Poll,
                    other => {
                        return Err(ServeError::Config(format!(
                            "--poll-backend expects auto|epoll|poll, got `{other}`"
                        )))
                    }
                };
            }
            "--help" => parsed.help = true,
            other => {
                return Err(ServeError::Config(format!(
                    "unknown flag `{other}`\n{USAGE}"
                )))
            }
        }
    }
    Ok(parsed)
}

fn serve(args: &[String]) -> Result<(), ServeError> {
    let args = parse_serve_args(args)?;
    if args.help {
        println!("{SERVE_HELP}");
        return Ok(());
    }
    let registry = ModelRegistry::load(args.specs)?;
    let models: Vec<String> = registry
        .precision_labels()
        .iter()
        .map(|(name, precision)| format!("{name} ({precision})"))
        .collect();
    let server = Server::bind(&args.addr, registry, args.config.clone())?;
    let addr = server.addr();
    println!(
        "ifair-serve listening on http://{addr} ({} backend)",
        server.backend_name()
    );
    println!("  models: {}", models.join(", "));
    println!("  pool threads: {} (0 = hardware)", args.config.n_threads);
    println!("  try: curl http://{addr}/healthz");
    if let Some(path) = &args.addr_file {
        std::fs::write(path, addr.to_string())
            .map_err(|e| ServeError::io(format!("writing --addr-file {path}"), e))?;
    }
    server.spawn().wait();
    Ok(())
}

/// Fits a small, fully deterministic demo pipeline (scale → iFair →
/// logistic regression, 3 input features) and writes its artifact.
fn demo_artifact(args: &[String]) -> Result<(), ServeError> {
    let [out] = args else {
        return Err(ServeError::Config(format!(
            "demo-artifact takes exactly one output path\n{USAGE}"
        )));
    };
    let ds = demo_dataset();
    let pipeline = Pipeline::builder()
        .standard_scaler()
        .ifair(IFairConfig {
            k: 3,
            max_iters: 40,
            n_restarts: 1,
            ..Default::default()
        })
        .logistic_regression_default()
        .fit(&ds)
        .map_err(|e| ServeError::Config(format!("fitting the demo pipeline: {e}")))?;
    let json = pipeline
        .to_json()
        .map_err(|e| ServeError::Config(format!("serializing the demo pipeline: {e}")))?;
    // Atomic write: a crash (or a concurrent server reload) sees either no
    // file or the complete artifact, never a torn prefix.
    ifair::api::write_atomic(std::path::Path::new(out), json.as_bytes())
        .map_err(|e| ServeError::io(format!("writing {out}"), e))?;
    println!("wrote demo pipeline artifact to {out}");
    println!("  input width: 3 features ([qualification, experience, gender])");
    println!("  serve it:    ifair serve --model demo={out} --addr 127.0.0.1:8080");
    println!(
        "  query it:    curl -s -X POST http://127.0.0.1:8080/v1/models/demo/transform \\\n               -d '{{\"rows\":[[0.9,0.4,1.0],[0.9,0.4,0.0]]}}'"
    );
    Ok(())
}

/// Fits a mini-batch model that checkpoints every epoch, simulates a crash
/// partway through, resumes from the on-disk checkpoint, and verifies the
/// resumed model is bit-identical to an uninterrupted fit.
fn checkpoint_demo(args: &[String]) -> Result<(), ServeError> {
    let [out] = args else {
        return Err(ServeError::Config(format!(
            "checkpoint-demo takes exactly one checkpoint path\n{USAGE}"
        )));
    };
    let path = std::path::PathBuf::from(out);
    let ds = demo_dataset();
    let x = &ds.x;
    let protected = &ds.protected;
    let config = IFairConfig {
        k: 3,
        n_restarts: 2,
        strategy: FitStrategy::MiniBatch {
            batch_records: 32,
            pairs_per_batch: 150,
            epochs: 4,
            learning_rate: 0.05,
        },
        ..Default::default()
    };
    let fit_err = |e: ifair::core::FitError| ServeError::Config(format!("checkpoint demo: {e}"));

    // The reference: the same fit, never interrupted.
    let reference = IFair::fit_checkpointed(x, protected, &config, |_| Ok(())).map_err(fit_err)?;

    // The "crash": every epoch checkpoints atomically to disk, and training
    // aborts after the third checkpoint — mid-restart, mid-schedule.
    let mut saved = 0u32;
    let crashed = IFair::fit_checkpointed(x, protected, &config, |cp| {
        cp.save(&path)?;
        saved += 1;
        if saved == 3 {
            return Err(ifair::core::FitError::Serialization(
                "simulated crash after the third checkpoint".into(),
            ));
        }
        Ok(())
    });
    assert!(crashed.is_err(), "the simulated crash aborts the fit");
    println!("crashed after {saved} checkpoints; last saved to {out}");

    // Recovery: load the checkpoint the crash left behind and resume.
    let checkpoint = ifair::core::FitCheckpoint::load(&path).map_err(fit_err)?;
    println!(
        "resuming from restart {} epoch {} ({} records)",
        checkpoint.restart(),
        checkpoint.epoch(),
        checkpoint.n_records()
    );
    let resumed = IFair::resume_from_checkpoint(x, &checkpoint, |cp| {
        cp.save(&path)?;
        Ok(())
    })
    .map_err(fit_err)?;

    let bits = |m: &IFair| {
        m.alpha()
            .iter()
            .chain(m.prototypes().as_slice())
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>()
    };
    if bits(&reference) != bits(&resumed) {
        return Err(ServeError::Config(
            "resumed model diverged from the uninterrupted fit".into(),
        ));
    }
    println!("resumed model is bit-identical to the uninterrupted fit");
    Ok(())
}

/// Rows per CSV streaming chunk during `convert` — bounds resident memory,
/// irrelevant to the output (shards cut at `--shard-rows`).
const CONVERT_CHUNK_ROWS: usize = 8192;

/// Parsed `convert` flags.
struct ConvertArgs {
    csv: Option<String>,
    generate: Option<LargeScaleConfig>,
    out: Option<String>,
    shard_rows: usize,
}

/// `M[,N_NUMERIC[,SEED]]` → a [`LargeScaleConfig`] with defaults elsewhere.
fn parse_generate_spec(raw: &str) -> Result<LargeScaleConfig, ServeError> {
    let mut config = LargeScaleConfig::default();
    let parts: Vec<&str> = raw.split(',').collect();
    if parts.is_empty() || parts.len() > 3 {
        return Err(ServeError::Config(format!(
            "--generate expects M[,N_NUMERIC[,SEED]], got `{raw}`"
        )));
    }
    let field = |what: &str, s: &str| {
        s.trim().parse::<u64>().map_err(|_| {
            ServeError::Config(format!("--generate {what} expects an integer, got `{s}`"))
        })
    };
    config.n_records = field("M", parts[0])? as usize;
    if let Some(p) = parts.get(1) {
        config.n_numeric = field("N_NUMERIC", p)? as usize;
    }
    if let Some(p) = parts.get(2) {
        config.seed = field("SEED", p)?;
    }
    if config.n_records == 0 || config.n_numeric == 0 {
        return Err(ServeError::Config(
            "--generate needs M >= 1 and N_NUMERIC >= 1".into(),
        ));
    }
    Ok(config)
}

fn data_err(context: &str, e: DataError) -> ServeError {
    ServeError::Config(format!("{context}: {e}"))
}

/// Streams a CSV file or the seeded generator into sharded `.ifb` files.
/// Resident memory is one chunk plus one shard buffer regardless of `M` —
/// the out-of-core contract that lets `fit_data_parallel` train on datasets
/// nothing in the process could materialize.
fn convert(args: &[String]) -> Result<(), ServeError> {
    let mut parsed = ConvertArgs {
        csv: None,
        generate: None,
        out: None,
        shard_rows: 0,
    };
    let mut iter = args.iter();
    let value = |flag: &str, iter: &mut std::slice::Iter<'_, String>| {
        iter.next()
            .cloned()
            .ok_or_else(|| ServeError::Config(format!("{flag} needs a value")))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--csv" => parsed.csv = Some(value("--csv", &mut iter)?),
            "--generate" => {
                parsed.generate = Some(parse_generate_spec(&value("--generate", &mut iter)?)?)
            }
            "--out" => parsed.out = Some(value("--out", &mut iter)?),
            "--shard-rows" => {
                let raw = value("--shard-rows", &mut iter)?;
                parsed.shard_rows = raw.parse::<usize>().map_err(|_| {
                    ServeError::Config(format!("--shard-rows expects an integer, got `{raw}`"))
                })?;
            }
            other => {
                return Err(ServeError::Config(format!(
                    "unknown flag `{other}`\n{USAGE}"
                )))
            }
        }
    }
    let Some(out) = parsed.out else {
        return Err(ServeError::Config(format!("convert needs --out\n{USAGE}")));
    };
    let shards = match (parsed.csv, parsed.generate) {
        (Some(csv), None) => convert_csv(&csv, &out, parsed.shard_rows)?,
        (None, Some(config)) => convert_generated(config, &out, parsed.shard_rows)?,
        _ => {
            return Err(ServeError::Config(format!(
                "convert needs exactly one of --csv or --generate\n{USAGE}"
            )))
        }
    };
    println!("wrote {} shard(s):", shards.len());
    for s in &shards {
        println!("  {}", s.display());
    }
    println!("  inspect one: ifair inspect {}", shards[0].display());
    Ok(())
}

fn convert_csv(
    csv: &str,
    out: &str,
    shard_rows: usize,
) -> Result<Vec<std::path::PathBuf>, ServeError> {
    let reader = ChunkedCsvReader::open(csv, CONVERT_CHUNK_ROWS)
        .map_err(|e| data_err("opening the CSV", e))?;
    let names = reader.feature_names().to_vec();
    let mut writer = BinDatasetWriter::create(out, names, shard_rows)
        .map_err(|e| data_err("creating the shard writer", e))?;
    let mut rows = 0usize;
    for chunk in reader {
        let chunk = chunk.map_err(|e| data_err("reading the CSV", e))?;
        for i in 0..chunk.rows() {
            writer
                .push_row(chunk.row(i))
                .map_err(|e| data_err("writing a shard", e))?;
        }
        rows += chunk.rows();
    }
    println!("converted {rows} CSV rows");
    writer
        .finish()
        .map_err(|e| data_err("finishing the shards", e))
}

fn convert_generated(
    config: LargeScaleConfig,
    out: &str,
    shard_rows: usize,
) -> Result<Vec<std::path::PathBuf>, ServeError> {
    let gen = LargeScale::new(config);
    let n = gen.width();
    let names: Vec<String> = (0..n - 1)
        .map(|j| format!("x{j}"))
        .chain(std::iter::once("protected".into()))
        .collect();
    let mut writer = BinDatasetWriter::create(out, names, shard_rows)
        .map_err(|e| data_err("creating the shard writer", e))?;
    let mut row = vec![0.0; n];
    for i in 0..gen.config().n_records {
        gen.row_into(i, &mut row);
        writer
            .push_row(&row)
            .map_err(|e| data_err("writing a shard", e))?;
    }
    println!(
        "generated {} rows x {n} features (seed {})",
        gen.config().n_records,
        gen.config().seed
    );
    writer
        .finish()
        .map_err(|e| data_err("finishing the shards", e))
}

/// Prints one shard's header — schema, row range, per-column stats — using
/// only the prelude bytes, never the payload.
fn inspect(args: &[String]) -> Result<(), ServeError> {
    let [path] = args else {
        return Err(ServeError::Config(format!(
            "inspect takes exactly one shard path\n{USAGE}"
        )));
    };
    let path = std::path::Path::new(path);
    let (header, geometry) =
        read_shard_header(path).map_err(|e| data_err("reading the shard header", e))?;
    println!("{}", path.display());
    println!(
        "  rows {}..{} ({} rows x {} features)",
        header.row_lo,
        header.row_lo + header.n_rows,
        header.n_rows,
        header.n_features
    );
    println!(
        "  payload: {} bytes at offset {} ({} bytes/row)",
        geometry.file_len - geometry.payload_offset,
        geometry.payload_offset,
        8 * header.n_features
    );
    match &header.stats {
        Some(stats) => {
            println!("  columns:");
            for (name, s) in header.feature_names.iter().zip(stats) {
                println!(
                    "    {name}: min {:.6} max {:.6} mean {:.6}",
                    s.min, s.max, s.mean
                );
            }
        }
        None => {
            println!("  columns: {}", header.feature_names.join(", "));
            println!("  (no per-column stats in this shard's header)");
        }
    }
    Ok(())
}

/// Parsed `certify` flags.
struct CertifyArgs {
    spec: Option<ModelSpec>,
    eps: Vec<f64>,
    delta: Vec<f64>,
    csv: Option<String>,
    threads: usize,
}

/// `E1[,E2,...]` → finite floats, rejecting anything unparseable.
fn parse_float_list(flag: &str, raw: &str) -> Result<Vec<f64>, ServeError> {
    raw.split(',')
        .map(|s| {
            s.trim().parse::<f64>().map_err(|_| {
                ServeError::Config(format!("{flag} expects comma-separated numbers, got `{s}`"))
            })
        })
        .collect()
}

/// Certifies an artifact offline: per-row sound (ε, δ) bounds at every
/// requested radius, plus the certified fraction at each `--delta`
/// threshold. The exact computation the `/certify` endpoint serves, minus
/// the HTTP — useful for report tables and release gating.
fn certify(args: &[String]) -> Result<(), ServeError> {
    let mut parsed = CertifyArgs {
        spec: None,
        eps: Vec::new(),
        delta: Vec::new(),
        csv: None,
        threads: 0,
    };
    let mut iter = args.iter();
    let value = |flag: &str, iter: &mut std::slice::Iter<'_, String>| {
        iter.next()
            .cloned()
            .ok_or_else(|| ServeError::Config(format!("{flag} needs a value")))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--model" => parsed.spec = Some(ModelSpec::parse(&value("--model", &mut iter)?)?),
            "--eps" => parsed.eps = parse_float_list("--eps", &value("--eps", &mut iter)?)?,
            "--delta" => parsed.delta = parse_float_list("--delta", &value("--delta", &mut iter)?)?,
            "--csv" => parsed.csv = Some(value("--csv", &mut iter)?),
            "--threads" => {
                let raw = value("--threads", &mut iter)?;
                parsed.threads = raw.parse::<usize>().map_err(|_| {
                    ServeError::Config(format!("--threads expects an integer, got `{raw}`"))
                })?;
            }
            other => {
                return Err(ServeError::Config(format!(
                    "unknown flag `{other}`\n{USAGE}"
                )))
            }
        }
    }
    let Some(spec) = parsed.spec else {
        return Err(ServeError::Config(format!(
            "certify needs --model\n{USAGE}"
        )));
    };
    if parsed.eps.is_empty() {
        return Err(ServeError::Config(format!("certify needs --eps\n{USAGE}")));
    }
    let json = read_artifact(&spec.path)?;
    let artifact = Artifact::from_json(&json).map_err(|e| {
        ServeError::Config(format!("loading artifact `{}`: {e}", spec.path.display()))
    })?;
    if !artifact.can_certify() {
        return Err(ServeError::Config(format!(
            "model `{}` does not support certification: \
             no iFair representation stage to certify",
            spec.name
        )));
    }
    let x = match &parsed.csv {
        Some(csv) => {
            let reader = ChunkedCsvReader::open(csv, CONVERT_CHUNK_ROWS)
                .map_err(|e| data_err("opening the CSV", e))?;
            let mut rows: Vec<Vec<f64>> = Vec::new();
            for chunk in reader {
                let chunk = chunk.map_err(|e| data_err("reading the CSV", e))?;
                for i in 0..chunk.rows() {
                    rows.push(chunk.row(i).to_vec());
                }
            }
            Matrix::from_rows(rows)
                .map_err(|e| ServeError::Config(format!("CSV rows are not rectangular: {e}")))?
        }
        None => demo_dataset().x,
    };
    let pool = WorkerPool::new(parsed.threads.max(1));
    println!(
        "certifying `{}` ({}, {} rows x {} features)",
        spec.name,
        spec.precision,
        x.rows(),
        x.cols()
    );
    for &eps in &parsed.eps {
        let certs = artifact
            .certify(x.clone(), eps, Some(&pool), spec.precision)
            .map_err(|e| ServeError::Config(format!("certifying at eps {eps}: {e}")))?;
        let mut deltas: Vec<f64> = certs.iter().map(|c| c.delta).collect();
        deltas.sort_by(|a, b| a.partial_cmp(b).expect("certified deltas are finite"));
        let median = deltas[deltas.len() / 2];
        println!(
            "  eps {eps}: delta min {:.6} median {median:.6} max {:.6}",
            deltas[0],
            deltas[deltas.len() - 1]
        );
        for &thr in &parsed.delta {
            let certified = deltas.iter().filter(|&&d| d <= thr).count();
            println!(
                "    delta <= {thr}: {certified}/{} rows certified ({:.1}%)",
                deltas.len(),
                100.0 * certified as f64 / deltas.len() as f64
            );
        }
    }
    Ok(())
}

/// Deterministic synthetic applicants: [qualification, experience, gender],
/// gender protected, outcome correlated with qualification.
fn demo_dataset() -> Dataset {
    let m = 64;
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let q = (i % 8) as f64 / 8.0;
            let e = ((i * 3 + 1) % 10) as f64 / 10.0;
            vec![q, e, (i % 2) as f64]
        })
        .collect();
    let labels: Vec<f64> = (0..m)
        .map(|i| f64::from((i % 8) as f64 / 8.0 + ((i * 3 + 1) % 10) as f64 / 20.0 > 0.6))
        .collect();
    Dataset::new(
        Matrix::from_rows(rows).expect("rectangular demo data"),
        vec!["qualification".into(), "experience".into(), "gender".into()],
        vec![false, false, true],
        Some(labels),
        (0..m).map(|i| (i % 2) as u8).collect(),
    )
    .expect("consistent demo dataset")
}
