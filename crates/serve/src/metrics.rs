//! Request counters and latency percentiles, scraped as Prometheus text.

use crate::supervisor::ThreadKind;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of recent request latencies retained for percentile estimation.
/// A fixed ring keeps the metrics path allocation-free after warm-up and
/// makes the percentiles a sliding window over recent traffic.
const LATENCY_WINDOW: usize = 4096;

/// Counters shared by every connection handler; scraped by `GET /metrics`.
#[derive(Debug, Default)]
pub struct Metrics {
    requests_total: AtomicU64,
    transform_requests: AtomicU64,
    predict_requests: AtomicU64,
    certify_requests: AtomicU64,
    rows_served: AtomicU64,
    errors_total: AtomicU64,
    rejected_total: AtomicU64,
    shed_total: AtomicU64,
    throttled_total: AtomicU64,
    deadline_exceeded_total: AtomicU64,
    timed_out_total: AtomicU64,
    socket_config_errors_total: AtomicU64,
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    keepalive_requests_total: AtomicU64,
    restarts_reactor: AtomicU64,
    restarts_batcher: AtomicU64,
    latencies: Mutex<LatencyRing>,
    /// Latest certified fraction per `(model, ε)` — updated by certify
    /// requests that carry a `delta` threshold; a BTreeMap keeps the
    /// exposition order stable across scrapes.
    certified_fraction: Mutex<BTreeMap<(String, String), f64>>,
}

/// Fixed-capacity ring of latency samples in nanoseconds.
#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, ns: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(ns);
        } else {
            self.samples[self.next] = ns;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    /// `(p50, p99)` over the retained window, in nanoseconds.
    fn percentiles(&self) -> Option<(u64, u64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        Some((at(0.50), at(0.99)))
    }
}

/// Which endpoint a request hit, for per-endpoint counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/models/{name}/transform`
    Transform,
    /// `POST /v1/models/{name}/predict`
    Predict,
    /// `POST /v1/models/{name}/certify`
    Certify,
    /// Everything else (`/healthz`, `/metrics`, `/admin/reload`, 404s).
    Other,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one completed request: endpoint, rows returned, wall-clock
    /// latency, and response status.
    pub fn observe(&self, endpoint: Endpoint, rows: usize, latency: Duration, status: u16) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        match endpoint {
            Endpoint::Transform => self.transform_requests.fetch_add(1, Ordering::Relaxed),
            Endpoint::Predict => self.predict_requests.fetch_add(1, Ordering::Relaxed),
            Endpoint::Certify => self.certify_requests.fetch_add(1, Ordering::Relaxed),
            Endpoint::Other => 0,
        };
        if rows > 0 {
            self.rows_served.fetch_add(rows as u64, Ordering::Relaxed);
        }
        if status >= 400 {
            self.errors_total.fetch_add(1, Ordering::Relaxed);
        }
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        // Recover a poisoned ring rather than propagate: losing one latency
        // sample to a panicked peer is fine, taking the handler down is not.
        self.latencies
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(ns);
    }

    /// Counts one request or connection shed with a 503 because a bound
    /// was hit (job queue full, connection cap reached) — such requests
    /// may never reach [`Metrics::observe`].
    pub fn observe_rejected(&self) {
        self.rejected_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request answered 429 because its model's in-flight
    /// admission cap was reached.
    pub fn observe_throttled(&self) {
        self.throttled_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one accepted connection (and raises the active gauge).
    pub fn observe_connection_opened(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the active-connections gauge when a connection closes.
    pub fn observe_connection_closed(&self) {
        // Saturating: a double-close accounting slip must not wrap the gauge.
        let _ = self
            .connections_active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Counts one request served on an already-used keep-alive connection
    /// (the second and later requests of each connection).
    pub fn observe_keepalive_reuse(&self) {
        self.keepalive_requests_total
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request shed with a 503 because its deadline budget was
    /// exhausted before compute started.
    pub fn observe_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request whose deadline expired while it waited for its
    /// batch reply (answered 504).
    pub fn observe_deadline_exceeded(&self) {
        self.deadline_exceeded_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request abandoned after the server-side reply timeout
    /// (answered 500; its batch job is cancelled and dropped at scatter).
    pub fn observe_timed_out(&self) {
        self.timed_out_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection closed because its socket timeouts could not
    /// be configured (serving without them risks wedging a worker forever).
    pub fn observe_socket_config_error(&self) {
        self.socket_config_errors_total
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records the certified fraction observed by a certify request that
    /// carried a `delta` threshold: the share of its rows whose certified
    /// δ was within the threshold, labelled by model and ε. Later requests
    /// at the same `(model, ε)` overwrite the gauge (latest wins).
    pub fn observe_certified_fraction(&self, model: &str, eps: f64, fraction: f64) {
        self.certified_fraction
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert((model.to_string(), format!("{eps}")), fraction);
    }

    /// Counts one supervised thread respawned after a panic.
    pub fn observe_thread_restart(&self, kind: ThreadKind) {
        let counter = match kind {
            ThreadKind::Reactor => &self.restarts_reactor,
            ThreadKind::Batcher => &self.restarts_batcher,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Total respawns of one supervised thread kind.
    pub fn thread_restarts(&self, kind: ThreadKind) -> u64 {
        match kind {
            ThreadKind::Reactor => &self.restarts_reactor,
            ThreadKind::Batcher => &self.restarts_batcher,
        }
        .load(Ordering::Relaxed)
    }

    /// Total requests shed for an exhausted deadline budget.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Total requests answered 429 at the per-model admission cap.
    pub fn throttled_total(&self) -> u64 {
        self.throttled_total.load(Ordering::Relaxed)
    }

    /// Total connections accepted since start.
    pub fn connections_total(&self) -> u64 {
        self.connections_total.load(Ordering::Relaxed)
    }

    /// Connections currently open in the reactor.
    pub fn connections_active(&self) -> u64 {
        self.connections_active.load(Ordering::Relaxed)
    }

    /// Total requests served on reused keep-alive connections.
    pub fn keepalive_requests_total(&self) -> u64 {
        self.keepalive_requests_total.load(Ordering::Relaxed)
    }

    /// Total requests whose deadline expired mid-wait.
    pub fn deadline_exceeded_total(&self) -> u64 {
        self.deadline_exceeded_total.load(Ordering::Relaxed)
    }

    /// Total requests abandoned at the server-side reply timeout.
    pub fn timed_out_total(&self) -> u64 {
        self.timed_out_total.load(Ordering::Relaxed)
    }

    /// Total requests handled so far (any endpoint, any status).
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Total data rows returned by transform/predict responses.
    pub fn rows_served(&self) -> u64 {
        self.rows_served.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition served at `GET /metrics`.
    /// `models_loaded`, `generation`, and the per-model `precisions`
    /// (`(name, precision label)` pairs) come from the registry.
    pub fn render(
        &self,
        models_loaded: usize,
        generation: u64,
        precisions: &[(String, &'static str)],
    ) -> String {
        let mut out = String::with_capacity(1024);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "ifair_requests_total",
            "HTTP requests handled.",
            self.requests_total(),
        );
        counter(
            "ifair_transform_requests_total",
            "Transform requests handled.",
            self.transform_requests.load(Ordering::Relaxed),
        );
        counter(
            "ifair_predict_requests_total",
            "Predict requests handled.",
            self.predict_requests.load(Ordering::Relaxed),
        );
        counter(
            "ifair_certify_requests_total",
            "Certify requests handled.",
            self.certify_requests.load(Ordering::Relaxed),
        );
        counter(
            "ifair_rows_served_total",
            "Data rows returned by transform/predict responses.",
            self.rows_served(),
        );
        counter(
            "ifair_request_errors_total",
            "Requests answered with a 4xx/5xx status.",
            self.errors_total.load(Ordering::Relaxed),
        );
        counter(
            "ifair_requests_rejected_total",
            "Requests/connections shed with 503 because the job queue or connection cap was full.",
            self.rejected_total.load(Ordering::Relaxed),
        );
        counter(
            "ifair_requests_shed_total",
            "Requests shed with 503 because their deadline budget was exhausted before compute.",
            self.shed_total.load(Ordering::Relaxed),
        );
        counter(
            "ifair_requests_throttled_total",
            "Requests answered 429 at the per-model in-flight admission cap.",
            self.throttled_total.load(Ordering::Relaxed),
        );
        counter(
            "ifair_requests_deadline_exceeded_total",
            "Requests answered 504 because their deadline expired awaiting the batch reply.",
            self.deadline_exceeded_total.load(Ordering::Relaxed),
        );
        counter(
            "ifair_requests_timed_out_total",
            "Requests abandoned (500) at the server-side reply timeout; their jobs are cancelled.",
            self.timed_out_total.load(Ordering::Relaxed),
        );
        counter(
            "ifair_socket_config_errors_total",
            "Connections dropped because their socket could not be configured (nonblocking/nodelay).",
            self.socket_config_errors_total.load(Ordering::Relaxed),
        );
        counter(
            "ifair_connections_total",
            "TCP connections accepted by the reactor.",
            self.connections_total(),
        );
        counter(
            "ifair_keepalive_requests_total",
            "Requests served on an already-used keep-alive connection.",
            self.keepalive_requests_total(),
        );
        out.push_str(&format!(
            "# HELP ifair_connections_active Connections currently open in the reactor.\n# TYPE ifair_connections_active gauge\nifair_connections_active {}\n",
            self.connections_active()
        ));
        out.push_str(
            "# HELP ifair_thread_restarts_total Supervised threads respawned after a panic.\n\
             # TYPE ifair_thread_restarts_total counter\n",
        );
        for kind in [ThreadKind::Reactor, ThreadKind::Batcher] {
            out.push_str(&format!(
                "ifair_thread_restarts_total{{kind=\"{}\"}} {}\n",
                kind.label(),
                self.thread_restarts(kind)
            ));
        }
        out.push_str(&format!(
            "# HELP ifair_models_loaded Artifacts currently loaded.\n# TYPE ifair_models_loaded gauge\nifair_models_loaded {models_loaded}\n"
        ));
        out.push_str(&format!(
            "# HELP ifair_registry_generation Monotone registry version, bumped by reloads.\n# TYPE ifair_registry_generation gauge\nifair_registry_generation {generation}\n"
        ));
        if !precisions.is_empty() {
            out.push_str(
                "# HELP ifair_model_precision Scalar precision each model serves at.\n# TYPE ifair_model_precision gauge\n",
            );
            for (name, precision) in precisions {
                out.push_str(&format!(
                    "ifair_model_precision{{model=\"{name}\",precision=\"{precision}\"}} 1\n"
                ));
            }
        }
        {
            let fractions = self
                .certified_fraction
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            // The family header renders even with no samples yet, so the
            // doc_lint capture sees the series regardless of scrape order.
            out.push_str(
                "# HELP ifair_certified_fraction Fraction of rows in the latest thresholded certify request whose certified delta met the requested threshold.\n# TYPE ifair_certified_fraction gauge\n",
            );
            for ((model, eps), fraction) in fractions.iter() {
                out.push_str(&format!(
                    "ifair_certified_fraction{{model=\"{model}\",eps=\"{eps}\"}} {fraction}\n"
                ));
            }
        }
        let window = self
            .latencies
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        out.push_str(
            "# HELP ifair_request_latency_seconds Request latency over a sliding window.\n# TYPE ifair_request_latency_seconds summary\n",
        );
        if let Some((p50, p99)) = window.percentiles() {
            out.push_str(&format!(
                "ifair_request_latency_seconds{{quantile=\"0.5\"}} {}\n",
                p50 as f64 / 1e9
            ));
            out.push_str(&format!(
                "ifair_request_latency_seconds{{quantile=\"0.99\"}} {}\n",
                p99 as f64 / 1e9
            ));
        }
        out.push_str(&format!(
            "ifair_request_latency_seconds_count {}\n",
            window.samples.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.observe(Endpoint::Transform, 8, Duration::from_micros(100), 200);
        m.observe(Endpoint::Predict, 2, Duration::from_micros(300), 200);
        m.observe(Endpoint::Other, 0, Duration::from_micros(50), 404);
        m.observe_rejected();
        assert_eq!(m.requests_total(), 3);
        assert_eq!(m.rows_served(), 10);
        let text = m.render(2, 7, &[("a".to_string(), "f64"), ("b".to_string(), "f32")]);
        assert!(text.contains("ifair_requests_total 3"));
        assert!(text.contains("ifair_transform_requests_total 1"));
        assert!(text.contains("ifair_predict_requests_total 1"));
        assert!(text.contains("ifair_rows_served_total 10"));
        assert!(text.contains("ifair_request_errors_total 1"));
        assert!(text.contains("ifair_requests_rejected_total 1"));
        assert!(text.contains("ifair_models_loaded 2"));
        assert!(text.contains("ifair_requests_shed_total 0"));
        assert!(text.contains("ifair_requests_throttled_total 0"));
        assert!(text.contains("ifair_requests_deadline_exceeded_total 0"));
        assert!(text.contains("ifair_requests_timed_out_total 0"));
        assert!(text.contains("ifair_socket_config_errors_total 0"));
        assert!(text.contains("ifair_connections_total 0"));
        assert!(text.contains("ifair_connections_active 0"));
        assert!(text.contains("ifair_keepalive_requests_total 0"));
        assert!(text.contains("ifair_thread_restarts_total{kind=\"reactor\"} 0"));
        assert!(text.contains("ifair_registry_generation 7"));
        assert!(text.contains("ifair_model_precision{model=\"a\",precision=\"f64\"} 1"));
        assert!(text.contains("ifair_model_precision{model=\"b\",precision=\"f32\"} 1"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("ifair_request_latency_seconds_count 3"));
    }

    #[test]
    fn robustness_counters_accumulate_and_render() {
        let m = Metrics::new();
        m.observe_shed();
        m.observe_shed();
        m.observe_deadline_exceeded();
        m.observe_timed_out();
        m.observe_socket_config_error();
        m.observe_thread_restart(ThreadKind::Batcher);
        m.observe_thread_restart(ThreadKind::Batcher);
        m.observe_thread_restart(ThreadKind::Reactor);
        assert_eq!(m.shed_total(), 2);
        assert_eq!(m.deadline_exceeded_total(), 1);
        assert_eq!(m.timed_out_total(), 1);
        assert_eq!(m.thread_restarts(ThreadKind::Batcher), 2);
        assert_eq!(m.thread_restarts(ThreadKind::Reactor), 1);
        let text = m.render(0, 0, &[]);
        assert!(text.contains("ifair_requests_shed_total 2"));
        assert!(text.contains("ifair_requests_deadline_exceeded_total 1"));
        assert!(text.contains("ifair_requests_timed_out_total 1"));
        assert!(text.contains("ifair_socket_config_errors_total 1"));
        assert!(text.contains("ifair_thread_restarts_total{kind=\"batcher\"} 2"));
        assert!(text.contains("ifair_thread_restarts_total{kind=\"reactor\"} 1"));
    }

    #[test]
    fn connection_lifecycle_counters_track_opens_reuse_and_throttling() {
        let m = Metrics::new();
        m.observe_connection_opened();
        m.observe_connection_opened();
        m.observe_keepalive_reuse();
        m.observe_throttled();
        m.observe_connection_closed();
        assert_eq!(m.connections_total(), 2);
        assert_eq!(m.connections_active(), 1);
        assert_eq!(m.keepalive_requests_total(), 1);
        assert_eq!(m.throttled_total(), 1);
        let text = m.render(0, 0, &[]);
        assert!(text.contains("ifair_connections_total 2"));
        assert!(text.contains("ifair_connections_active 1"));
        assert!(text.contains("ifair_keepalive_requests_total 1"));
        assert!(text.contains("ifair_requests_throttled_total 1"));
        // The gauge saturates at zero instead of wrapping.
        m.observe_connection_closed();
        m.observe_connection_closed();
        assert_eq!(m.connections_active(), 0);
    }

    #[test]
    fn certify_counters_and_fraction_gauge_render() {
        let m = Metrics::new();
        m.observe(Endpoint::Certify, 4, Duration::from_micros(80), 200);
        m.observe_certified_fraction("credit", 0.05, 0.75);
        m.observe_certified_fraction("credit", 0.05, 0.5); // latest wins
        m.observe_certified_fraction("income", 0.1, 1.0);
        let text = m.render(1, 1, &[]);
        assert!(text.contains("ifair_certify_requests_total 1"));
        assert!(text.contains("ifair_certified_fraction{model=\"credit\",eps=\"0.05\"} 0.5"));
        assert!(text.contains("ifair_certified_fraction{model=\"income\",eps=\"0.1\"} 1"));
        // Without any thresholded certify request the gauge family is absent
        // (but the counter still renders for doc_lint).
        let empty = Metrics::new().render(0, 0, &[]);
        assert!(empty.contains("ifair_certify_requests_total 0"));
        assert!(!empty.contains("ifair_certified_fraction{"));
    }

    #[test]
    fn percentiles_track_the_window() {
        let ring = {
            let mut r = LatencyRing::default();
            for ns in 1..=100u64 {
                r.push(ns);
            }
            r
        };
        let (p50, p99) = ring.percentiles().unwrap();
        assert_eq!(p50, 51); // round(99 * 0.5) = 50 -> sorted[50] = 51
        assert_eq!(p99, 99);
        assert!(LatencyRing::default().percentiles().is_none());
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let mut r = LatencyRing::default();
        for ns in 0..(LATENCY_WINDOW as u64 + 10) {
            r.push(ns);
        }
        assert_eq!(r.samples.len(), LATENCY_WINDOW);
        // The first ten slots now hold the newest samples.
        assert_eq!(r.samples[0], LATENCY_WINDOW as u64);
    }
}
