//! Readiness polling for the serving reactor: a std-only shim over
//! `epoll(7)` (Linux) with a portable `poll(2)` fallback (other Unixes).
//!
//! The offline build rule forbids external crates, so the two syscall
//! surfaces are declared directly in the scoped [`sys`] module below —
//! std already links libc, so `epoll_create1` / `epoll_ctl` /
//! `epoll_wait` / `poll` resolve at link time without any build script.
//! Everything outside [`sys`] is safe code; the crate-level
//! `#![deny(unsafe_code)]` is relaxed only for that one module.
//!
//! The [`Poller`] is **level-triggered** on both backends. That is a
//! deliberate crash-safety property, not a simplification: if the reactor
//! thread panics between `wait` and event handling (see the
//! `serve.reactor` chaos site), every still-ready socket is re-reported
//! on the next `wait` after the supervisor respawns the loop, so no
//! connection is stranded.
//!
//! [`Waker`] is the cross-thread wake-up: a nonblocking
//! `UnixStream::pair` whose read end is registered in the poller. The
//! batcher completes jobs on its own thread and needs the reactor to
//! come back from `epoll_wait`; writing one byte does that. A full pipe
//! (`WouldBlock`) means a wake is already pending and is ignored.

#![cfg(unix)]

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// Interest in readability. Combine with [`INTEREST_WRITE`] via `|`.
pub(crate) const INTEREST_READ: u8 = 0b01;
/// Interest in writability.
pub(crate) const INTEREST_WRITE: u8 = 0b10;

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable (or has pending error/hangup — those
    /// are folded into `readable` so the owner discovers them on `read`).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
}

/// Which readiness backend the reactor should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollBackend {
    /// `epoll` on Linux, `poll(2)` elsewhere.
    Auto,
    /// Force `epoll(7)`; bind fails on non-Linux targets.
    Epoll,
    /// Force the portable `poll(2)` backend.
    Poll,
}

/// The raw syscall surface. The only `unsafe` in the crate lives here;
/// every wrapper upholds the invariants the kernel interface needs
/// (valid fds, correctly sized out-buffers) and converts errno into
/// `io::Error`.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::raw::c_int;

    /// `struct pollfd` from `poll(2)`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
    }

    /// `poll(2)`: waits on `fds`, returns the number of ready entries.
    pub fn poll_wait(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // repr(C) pollfd; the kernel writes only `revents` within it.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }

    /// `struct epoll_event`. The kernel ABI packs this on x86-64 only.
    #[cfg(target_os = "linux")]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use super::EpollEvent;
        use std::io;
        use std::os::raw::c_int;
        use std::os::unix::io::RawFd;

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        const EPOLL_CLOEXEC: c_int = 0o2000000;

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            fn close(fd: c_int) -> c_int;
        }

        /// Creates a close-on-exec epoll instance.
        pub fn create() -> io::Result<RawFd> {
            // SAFETY: no pointers involved; the flag is a valid constant.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(fd)
            }
        }

        /// `epoll_ctl` with an optional event (DEL takes none).
        pub fn ctl(epfd: RawFd, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
            let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
            // SAFETY: `ev` is a valid repr(C) epoll_event for the call's
            // duration; the kernel only reads it.
            let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        /// `epoll_wait` into `events`, returning the ready count.
        pub fn wait(
            epfd: RawFd,
            events: &mut [EpollEvent],
            timeout_ms: c_int,
        ) -> io::Result<usize> {
            // SAFETY: `events` is a valid exclusively borrowed buffer of
            // `maxevents` repr(C) entries the kernel fills.
            let rc =
                unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(rc as usize)
            }
        }

        /// Closes the epoll fd (used by the Drop impl).
        pub fn close_fd(fd: RawFd) {
            // SAFETY: `fd` is an epoll fd we own and close exactly once.
            let _ = unsafe { close(fd) };
        }
    }
}

/// Converts a timeout to the millisecond form both syscalls take:
/// `None` → block forever (-1); sub-millisecond nonzero waits round up
/// to 1ms so timers can't busy-spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

/// Level-triggered readiness poller over one of the two backends.
#[derive(Debug)]
pub(crate) enum Poller {
    /// Linux `epoll(7)`.
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    /// Portable `poll(2)` over a registration vector.
    Poll(PollPoller),
}

impl Poller {
    /// Opens a poller for `backend`. [`PollBackend::Epoll`] fails with
    /// `Unsupported` off Linux.
    pub fn new(backend: PollBackend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            PollBackend::Auto | PollBackend::Epoll => Ok(Poller::Epoll(EpollPoller::new()?)),
            #[cfg(not(target_os = "linux"))]
            PollBackend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux; use --poll-backend poll",
            )),
            #[cfg(not(target_os = "linux"))]
            PollBackend::Auto => Ok(Poller::Poll(PollPoller::new())),
            PollBackend::Poll => Ok(Poller::Poll(PollPoller::new())),
        }
    }

    /// The backend's name, for the startup banner and docs.
    pub fn backend_name(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    /// Starts watching `fd` under `token` with `interest`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.register(fd, token, interest),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Changes the interest set of an already registered `fd`.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.reregister(fd, token, interest),
            Poller::Poll(p) => p.reregister(fd, token, interest),
        }
    }

    /// Stops watching `fd`.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.deregister(fd),
            Poller::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until readiness or `timeout`, appending events to `out`
    /// (which is cleared first). `Interrupted` waits retry internally.
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<PollEvent>) -> io::Result<()> {
        out.clear();
        loop {
            let r = match self {
                #[cfg(target_os = "linux")]
                Poller::Epoll(p) => p.wait(timeout, out),
                Poller::Poll(p) => p.wait(timeout, out),
            };
            match r {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }
}

/// `epoll(7)` backend: the kernel holds the registration table.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub(crate) struct EpollPoller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> io::Result<EpollPoller> {
        Ok(EpollPoller {
            epfd: sys::epoll::create()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn mask(interest: u8) -> u32 {
        let mut events = 0;
        if interest & INTEREST_READ != 0 {
            events |= sys::epoll::EPOLLIN;
        }
        if interest & INTEREST_WRITE != 0 {
            events |= sys::epoll::EPOLLOUT;
        }
        events
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        let ev = sys::EpollEvent {
            events: Self::mask(interest),
            data: token,
        };
        sys::epoll::ctl(self.epfd, sys::epoll::EPOLL_CTL_ADD, fd, Some(ev))
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        let ev = sys::EpollEvent {
            events: Self::mask(interest),
            data: token,
        };
        sys::epoll::ctl(self.epfd, sys::epoll::EPOLL_CTL_MOD, fd, Some(ev))
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        sys::epoll::ctl(self.epfd, sys::epoll::EPOLL_CTL_DEL, fd, None)
    }

    fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<PollEvent>) -> io::Result<()> {
        let n = sys::epoll::wait(self.epfd, &mut self.buf, timeout_ms(timeout))?;
        for ev in &self.buf[..n] {
            // Copy fields out of the (possibly packed) struct before use.
            let events = ev.events;
            let token = ev.data;
            out.push(PollEvent {
                token,
                readable: events
                    & (sys::epoll::EPOLLIN | sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP)
                    != 0,
                writable: events & (sys::epoll::EPOLLOUT | sys::epoll::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        sys::epoll::close_fd(self.epfd);
    }
}

/// `poll(2)` backend: the registration table lives in userspace and the
/// whole fd set is resubmitted per wait. O(n) per call, which is fine at
/// the connection counts the fallback targets.
#[derive(Debug, Default)]
pub(crate) struct PollPoller {
    entries: Vec<(sys::PollFd, u64)>,
}

impl PollPoller {
    fn new() -> PollPoller {
        PollPoller::default()
    }

    fn events(interest: u8) -> i16 {
        let mut events = 0;
        if interest & INTEREST_READ != 0 {
            events |= sys::POLLIN;
        }
        if interest & INTEREST_WRITE != 0 {
            events |= sys::POLLOUT;
        }
        events
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        if self.entries.iter().any(|(p, _)| p.fd == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((
            sys::PollFd {
                fd,
                events: Self::events(interest),
                revents: 0,
            },
            token,
        ));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        for (p, t) in &mut self.entries {
            if p.fd == fd {
                p.events = Self::events(interest);
                *t = token;
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let before = self.entries.len();
        self.entries.retain(|(p, _)| p.fd != fd);
        if self.entries.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<PollEvent>) -> io::Result<()> {
        let mut fds: Vec<sys::PollFd> = self.entries.iter().map(|(p, _)| *p).collect();
        let n = sys::poll_wait(&mut fds, timeout_ms(timeout))?;
        if n == 0 {
            return Ok(());
        }
        for (polled, (_, token)) in fds.iter().zip(&self.entries) {
            let re = polled.revents;
            if re == 0 {
                continue;
            }
            out.push(PollEvent {
                token: *token,
                readable: re & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0,
                writable: re & (sys::POLLOUT | sys::POLLERR) != 0,
            });
        }
        Ok(())
    }
}

/// Cross-thread wake-up handle for a [`Poller`] (clone freely; all
/// clones poke the same pipe).
#[derive(Debug, Clone)]
pub(crate) struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Makes the poller's next `wait` return promptly. Never blocks: a
    /// full pipe means a wake is already pending.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1]);
    }
}

/// Builds a waker and the stream the reactor must register under its
/// waker token. Both ends are nonblocking.
pub(crate) fn waker_pair() -> io::Result<(Waker, UnixStream)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, rx))
}

/// Drains all pending wake bytes from the waker's read end.
pub(crate) fn drain_waker(rx: &mut UnixStream) {
    let mut buf = [0u8; 64];
    while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
}

/// The raw fd of a registered resource (tiny helper so reactor code
/// reads uniformly).
pub(crate) fn fd_of<T: AsRawFd>(t: &T) -> RawFd {
    t.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn poller_roundtrip(mut poller: Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(fd_of(&listener), 7, INTEREST_READ).unwrap();

        // Nothing pending: a short wait times out with no events.
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty());

        // A connection attempt makes the listener readable.
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Level-triggered: the same readiness is re-reported until the
        // accept is actually performed (the reactor's crash-safety net).
        poller
            .wait(Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let (accepted, _) = listener.accept().unwrap();
        drop(accepted);
        drop(client);
        poller.deregister(fd_of(&listener)).unwrap();
        poller
            .wait(Some(Duration::from_millis(5)), &mut events)
            .unwrap();
        assert!(events.is_empty());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_level_triggered_readiness() {
        poller_roundtrip(Poller::new(PollBackend::Epoll).unwrap());
    }

    #[test]
    fn poll_backend_reports_level_triggered_readiness() {
        poller_roundtrip(Poller::new(PollBackend::Poll).unwrap());
    }

    #[test]
    fn waker_wakes_a_blocked_wait_and_drains() {
        let mut poller = Poller::new(PollBackend::Auto).unwrap();
        let (waker, mut rx) = waker_pair().unwrap();
        poller.register(fd_of(&rx), 1, INTEREST_READ).unwrap();

        let mut events = Vec::new();
        waker.wake();
        waker.wake(); // coalesces; never blocks
        poller
            .wait(Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        drain_waker(&mut rx);
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "drained waker must go quiet");
    }

    #[test]
    fn interest_rewrites_flow_through_reregister() {
        let mut poller = Poller::new(PollBackend::Auto).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();

        // Write interest on a fresh socket: immediately writable.
        poller
            .register(fd_of(&client), 3, INTEREST_READ | INTEREST_WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        // Drop write interest: socket stays quiet (nothing to read).
        poller.reregister(fd_of(&client), 3, INTEREST_READ).unwrap();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty());

        // Peer data flips it readable again.
        let (mut peer, _) = listener.accept().unwrap();
        peer.write_all(b"x").unwrap();
        poller
            .wait(Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
        let _ = client.read(&mut [0u8; 4]);
    }
}
