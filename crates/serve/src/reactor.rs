//! The event-driven serving core: one reactor thread multiplexes every
//! connection over a level-triggered [`Poller`].
//!
//! ```text
//!                 ┌────────────── reactor thread ──────────────┐
//! clients ──TCP──▶ accept ─▶ read ─▶ parse (zero-copy) ─▶ route │
//!                 │   ▲          per-connection state machine   │
//!                 │   └── waker ◀── completion queue ◀──┐       │
//!                 └─────────────────────────────────────┼───────┘
//!                                                       │
//!                                          batcher (1 thread)
//!                               coalesce jobs ─▶ ONE pooled pass ─▶ scatter
//! ```
//!
//! Each connection owns a reusable read buffer that requests are parsed
//! out of **in place** ([`parse_request`] borrows, never copies), an
//! output buffer flushed as the socket allows, and an in-order queue of
//! [`PendingReq`] entries so HTTP/1.1 pipelining answers in request
//! order even though the batcher completes jobs in any order.
//!
//! Crash safety: the whole [`ReactorState`] lives in a `Mutex` owned by
//! the supervised closure. The designated panic site (`serve.reactor`)
//! sits right after `wait`, where no connection is mid-mutation; after a
//! panic the supervisor re-enters the loop, `recover_lock` absorbs the
//! poison, the level-triggered poller re-reports every still-ready
//! socket, and unread completions are still in the channel — no
//! connection is lost or cross-wired by a reactor restart.

use crate::batch::{Job, JobError, JobOutput, Op};
use crate::http::{append_response, parse_request, HttpError, RequestRef};
use crate::metrics::{Endpoint, Metrics};
use crate::poll::{drain_waker, fd_of, PollEvent, Poller, Waker, INTEREST_READ, INTEREST_WRITE};
use crate::registry::ModelRegistry;
use crate::server::{
    ServerConfig, DEADLINE_HEADER, READ_TIMEOUT, REPLY_TIMEOUT, RETRY_AFTER_SECS, WRITE_TIMEOUT,
};
use crate::supervisor::{recover_lock, supervise, ThreadKind};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token of the TCP listener.
pub(crate) const TOKEN_LISTENER: u64 = 0;
/// Poller token of the waker's read end.
pub(crate) const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// How long shutdown waits for in-flight requests before closing the
/// stragglers anyway.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Read chunk per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Reads per readable event before yielding back to the poller, so one
/// fire-hosing connection cannot starve its peers (level-triggered
/// polling re-reports the leftover readiness immediately).
const MAX_READS_PER_EVENT: usize = 16;

/// Compact the read buffer once the consumed prefix exceeds this.
const COMPACT_THRESHOLD: usize = 4 * 1024;

/// A finished job travelling from the batcher back to the reactor.
pub(crate) struct Completion {
    /// Connection token the request arrived on.
    token: u64,
    /// Per-connection request sequence number.
    seq: u64,
    result: Result<JobOutput, JobError>,
}

/// A fully-formed HTTP reply plus the bookkeeping the metrics need.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    endpoint: Endpoint,
    /// Data rows in the response (transform/predict only).
    rows: usize,
    /// `Retry-After` seconds; set on shed/throttle replies so well-behaved
    /// clients back off instead of hammering a saturated server. Any reply
    /// carrying it also closes the connection.
    retry_after: Option<u64>,
}

impl Reply {
    fn json(status: u16, body: Vec<u8>, endpoint: Endpoint, rows: usize) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body,
            endpoint,
            rows,
            retry_after: None,
        }
    }

    fn error(status: u16, endpoint: Endpoint, message: &str) -> Reply {
        let body = serde_json::to_string(&ErrorResponse {
            error: message.to_string(),
        })
        .unwrap_or_else(|_| "{\"error\":\"error\"}".into());
        Reply::json(status, body.into_bytes(), endpoint, 0)
    }

    /// The load-shedding 503: deadline budget exhausted before compute.
    fn shed(endpoint: Endpoint) -> Reply {
        let mut reply = Reply::error(
            503,
            endpoint,
            "deadline budget exhausted before compute; request shed",
        );
        reply.retry_after = Some(RETRY_AFTER_SECS);
        reply
    }

    /// The admission-control 429: too many in-flight requests for one model.
    fn throttled(endpoint: Endpoint) -> Reply {
        let mut reply = Reply::error(429, endpoint, "model admission limit reached; retry later");
        reply.retry_after = Some(RETRY_AFTER_SECS);
        reply
    }

    /// The backpressure 503: the job queue is full.
    fn queue_full(endpoint: Endpoint) -> Reply {
        let mut reply = Reply::error(503, endpoint, "request queue is full");
        reply.retry_after = Some(RETRY_AFTER_SECS);
        reply
    }
}

/// One request a connection has accepted but not yet answered on the wire.
/// Inline routes (health, metrics, validation errors) are born with
/// `reply` already set; dispatched jobs get theirs from a [`Completion`]
/// or from the timer sweep (deadline / reply timeout).
struct PendingReq {
    seq: u64,
    endpoint: Endpoint,
    /// When this request's first bytes arrived — latency and deadline
    /// budgets anchor here, so queue wait counts against them.
    anchor: Instant,
    /// When the job entered the batcher queue (reply-timeout anchor).
    enqueued_at: Instant,
    deadline: Option<Instant>,
    /// Present iff a job was dispatched: set to cancel it on timeout/close.
    cancelled: Option<Arc<AtomicBool>>,
    /// Model the request targeted (response body + admission bookkeeping).
    model_name: Option<String>,
    /// Whether this request holds a per-model admission slot.
    slot_held: bool,
    /// Rows in the request (echoed into the row metrics on success).
    rows: usize,
    /// Set on `/certify` requests: the radius (and optional threshold)
    /// the response rendering needs back once the job completes.
    certify: Option<CertifyMeta>,
    reply: Option<Reply>,
    /// Close the connection after writing this reply (client asked, cap
    /// reached, or the request could never be parsed past).
    close_after: bool,
}

/// The certification parameters a `/certify` request carried, kept on the
/// pending entry so the completion can echo them and threshold the deltas.
#[derive(Debug, Clone, Copy)]
struct CertifyMeta {
    eps: f64,
    delta: Option<f64>,
}

impl PendingReq {
    /// An inline (already answered) pending entry.
    fn done(seq: u64, anchor: Instant, reply: Reply, close_after: bool) -> PendingReq {
        PendingReq {
            seq,
            endpoint: reply.endpoint,
            anchor,
            enqueued_at: anchor,
            deadline: None,
            cancelled: None,
            model_name: None,
            slot_held: false,
            rows: 0,
            certify: None,
            reply: Some(reply),
            close_after,
        }
    }

    /// Whether this entry is a dispatched job still awaiting its result.
    fn awaiting_job(&self) -> bool {
        self.reply.is_none() && self.cancelled.is_some()
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Request bytes; `buf[start..]` is the unconsumed tail.
    buf: Vec<u8>,
    start: usize,
    /// Framed response bytes; `out[out_pos..]` still needs the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// In-order request queue (pipelining answers strictly in order).
    pending: VecDeque<PendingReq>,
    next_seq: u64,
    /// Requests fully answered on this connection.
    served: u64,
    /// Requests parsed off this connection (keep-alive cap counts these).
    assigned: u64,
    /// Arrival instant of the *next* request's first bytes (deadline
    /// anchor); `None` until bytes show up.
    anchor: Option<Instant>,
    read_closed: bool,
    /// No further requests will be parsed (close requested, cap reached,
    /// or a parse error poisoned the stream).
    no_more_requests: bool,
    /// A `Connection: close` response is (being) written; close once the
    /// output buffer drains.
    closing: bool,
    last_activity: Instant,
    interest: u8,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            buf: Vec::with_capacity(4 * 1024),
            start: 0,
            out: Vec::with_capacity(4 * 1024),
            out_pos: 0,
            pending: VecDeque::new(),
            next_seq: 0,
            served: 0,
            assigned: 0,
            anchor: Some(now),
            read_closed: false,
            no_more_requests: false,
            closing: false,
            last_activity: now,
            interest: INTEREST_READ,
        }
    }

    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// Everything the reactor mutates, behind the supervised closure's mutex
/// so a panic respawn resumes with the same connections.
struct ReactorState {
    poller: Poller,
    listener: TcpListener,
    listener_registered: bool,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Per-model in-flight request counts (admission control).
    inflight: HashMap<String, usize>,
    comp_rx: Receiver<Completion>,
    /// Reused event buffer (taken/restored around each `wait`).
    events: Vec<PollEvent>,
    drain_deadline: Option<Instant>,
}

/// Immutable reactor context (shared handles, config).
struct ReactorCtx {
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    job_tx: SyncSender<Job>,
    comp_tx: Sender<Completion>,
    waker: Waker,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

/// Spawns the supervised reactor thread. The listener and waker read end
/// arrive already registered in `poller` (under [`TOKEN_LISTENER`] /
/// [`TOKEN_WAKER`]) so nothing here can fail.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_reactor(
    listener: TcpListener,
    poller: Poller,
    waker: Waker,
    wake_rx: UnixStream,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    job_tx: SyncSender<Job>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) -> JoinHandle<()> {
    let (comp_tx, comp_rx) = channel();
    let state = Mutex::new(ReactorState {
        poller,
        listener,
        listener_registered: true,
        wake_rx,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        inflight: HashMap::new(),
        comp_rx,
        events: Vec::with_capacity(64),
        drain_deadline: None,
    });
    let ctx = ReactorCtx {
        registry,
        metrics: Arc::clone(&metrics),
        job_tx,
        comp_tx,
        waker,
        shutdown: Arc::clone(&shutdown),
        config,
    };
    // The closure owns the state: when the loop ends the listener drops
    // with it, releasing the port. A panic leaves both in place for the
    // supervisor's next invocation.
    supervise(
        "ifair-serve-reactor".into(),
        ThreadKind::Reactor,
        shutdown,
        metrics,
        move || reactor_loop(&state, &ctx),
    )
}

fn reactor_loop(shared: &Mutex<ReactorState>, ctx: &ReactorCtx) {
    let mut st = recover_lock(shared);
    let st = &mut *st;
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            begin_drain(st);
            sweep_drained(st, ctx);
            if st.conns.is_empty() {
                break;
            }
        }
        let timeout = next_timeout(st);
        let mut events = std::mem::take(&mut st.events);
        let waited = st.poller.wait(timeout, &mut events);
        // Fault site: a scheduled panic here kills the reactor at its
        // designated consistent point — between syscall and handling. The
        // supervisor respawns the loop over the same state; level-triggered
        // readiness and the completion channel replay everything missed.
        ifair::api::faults::check_panic("serve.reactor");
        if waited.is_err() {
            // Poller failure is not a per-connection problem; back off a
            // beat instead of spinning, and let supervision semantics hold.
            st.events = events;
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => accept_ready(st, ctx),
                TOKEN_WAKER => drain_waker(&mut st.wake_rx),
                token => {
                    if ev.readable {
                        conn_readable(st, ctx, token);
                    }
                    if ev.writable {
                        conn_writable(st, ctx, token);
                    }
                }
            }
        }
        st.events = events;
        drain_completions(st, ctx);
        service_timers(st, ctx);
        progress_conns(st, ctx);
    }
}

/// Enters drain mode once: stop accepting, start the drain clock.
fn begin_drain(st: &mut ReactorState) {
    if st.drain_deadline.is_none() {
        st.drain_deadline = Some(Instant::now() + DRAIN_TIMEOUT);
    }
    if st.listener_registered {
        let _ = st.poller.deregister(fd_of(&st.listener));
        st.listener_registered = false;
    }
}

/// During drain: close connections with nothing left to answer, or every
/// connection once the drain deadline passes.
fn sweep_drained(st: &mut ReactorState, ctx: &ReactorCtx) {
    let now = Instant::now();
    let expired = st.drain_deadline.is_some_and(|d| now >= d);
    let done: Vec<u64> = st
        .conns
        .iter()
        .filter(|(_, c)| expired || (c.pending.is_empty() && !c.has_output()))
        .map(|(&t, _)| t)
        .collect();
    for token in done {
        close_conn(st, ctx, token);
    }
}

/// The earliest instant any timer could fire, as a `wait` timeout.
fn next_timeout(st: &ReactorState) -> Option<Duration> {
    let mut earliest: Option<Instant> = None;
    let mut consider = |t: Instant| {
        earliest = Some(earliest.map_or(t, |e| e.min(t)));
    };
    if let Some(d) = st.drain_deadline {
        consider(d);
    }
    for conn in st.conns.values() {
        if conn.has_output() {
            consider(conn.last_activity + WRITE_TIMEOUT);
        } else if conn.pending.is_empty() {
            consider(conn.last_activity + READ_TIMEOUT);
        }
        for p in &conn.pending {
            if p.awaiting_job() {
                if let Some(d) = p.deadline {
                    consider(d);
                }
                consider(p.enqueued_at + REPLY_TIMEOUT);
            }
        }
    }
    earliest.map(|e| e.saturating_duration_since(Instant::now()))
}

/// Accepts every connection the listener has ready.
fn accept_ready(st: &mut ReactorState, ctx: &ReactorCtx) {
    loop {
        match st.listener.accept() {
            Ok((stream, _peer)) => {
                let cap = ctx.config.max_connections;
                if cap != 0 && st.conns.len() >= cap {
                    ctx.metrics.observe_rejected();
                    shed_connection(stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    // A socket that cannot go nonblocking would wedge the
                    // whole reactor on its first stall: count and drop it.
                    ctx.metrics.observe_socket_config_error();
                    continue;
                }
                let token = st.next_token;
                st.next_token += 1;
                if st
                    .poller
                    .register(fd_of(&stream), token, INTEREST_READ)
                    .is_err()
                {
                    ctx.metrics.observe_socket_config_error();
                    continue;
                }
                ctx.metrics.observe_connection_opened();
                st.conns.insert(token, Conn::new(stream, Instant::now()));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient accept errors (peer vanished mid-handshake) are
            // not fatal; anything persistent re-reports via the poller.
            Err(_) => break,
        }
    }
}

/// Best-effort 503 to a connection shed at the cap. The stream is still
/// blocking here; a short write timeout keeps a dead peer from stalling
/// the reactor.
fn shed_connection(mut stream: TcpStream) {
    let mut out = Vec::new();
    append_response(
        &mut out,
        503,
        "application/json",
        &[("Retry-After", RETRY_AFTER_SECS.to_string())],
        false,
        b"{\"error\":\"connection limit reached\"}",
    );
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(&out);
}

/// Reads whatever the socket has (bounded per event) and parses as many
/// complete requests as arrived.
fn conn_readable(st: &mut ReactorState, ctx: &ReactorCtx, token: u64) {
    // Fault site: an injected delay here simulates a slow peer stalling
    // mid-read without blocking any other connection's progress.
    ifair::api::faults::check_delay("serve.conn.read");
    {
        let Some(conn) = st.conns.get_mut(&token) else {
            return;
        };
        let mut scratch = [0u8; READ_CHUNK];
        for _ in 0..MAX_READS_PER_EVENT {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    let now = Instant::now();
                    if conn.anchor.is_none() {
                        conn.anchor = Some(now);
                    }
                    conn.last_activity = now;
                    conn.buf.extend_from_slice(&scratch[..n]);
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.read_closed = true;
                    break;
                }
            }
        }
    }
    parse_and_route(st, ctx, token);
}

/// The socket reported writable: push buffered output immediately (the
/// general sweep in `progress_conns` also flushes, but a direct event
/// means a stalled large response can drain right now).
fn conn_writable(st: &mut ReactorState, ctx: &ReactorCtx, token: u64) {
    let failed = match st.conns.get_mut(&token) {
        Some(conn) => try_flush(conn).is_err(),
        None => false,
    };
    if failed {
        close_conn(st, ctx, token);
    }
}

/// Parses every complete request buffered on `token` and routes each one,
/// in arrival order, onto the connection's pending queue.
fn parse_and_route(st: &mut ReactorState, ctx: &ReactorCtx, token: u64) {
    let ReactorState {
        conns, inflight, ..
    } = st;
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    while !conn.no_more_requests {
        match parse_request(&conn.buf[conn.start..]) {
            Ok(None) => break,
            Ok(Some((req, consumed))) => {
                let now = Instant::now();
                let anchor = conn.anchor.take().unwrap_or(now);
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.assigned += 1;
                let cap = ctx.config.keep_alive_requests;
                let close_after = !req.keep_alive() || (cap != 0 && conn.assigned >= cap as u64);
                let mut pending =
                    route_request(ctx, inflight, &req, token, seq, anchor, close_after);
                conn.start += consumed;
                // Replies that tell the client to back off (shed, queue
                // full, throttled) also close, so any pipelined successors
                // are moot: stop parsing them.
                let terminal = pending.close_after
                    || pending
                        .reply
                        .as_ref()
                        .is_some_and(|r| r.retry_after.is_some());
                pending.close_after = terminal;
                conn.pending.push_back(pending);
                if terminal {
                    conn.no_more_requests = true;
                    break;
                }
                if conn.start < conn.buf.len() {
                    // More pipelined bytes already buffered: the next
                    // request's budget starts now, not when we next read.
                    conn.anchor = Some(now);
                }
            }
            Err(e) => {
                let anchor = conn.anchor.take().unwrap_or_else(Instant::now);
                let reply = match e {
                    HttpError::TooLarge(_) => {
                        Reply::error(413, Endpoint::Other, "request body too large")
                    }
                    HttpError::Malformed(msg) => Reply::error(400, Endpoint::Other, &msg),
                };
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.pending
                    .push_back(PendingReq::done(seq, anchor, reply, true));
                conn.no_more_requests = true;
                conn.start = conn.buf.len();
                break;
            }
        }
    }
    // Reclaim the consumed prefix without disturbing unparsed bytes.
    if conn.start >= conn.buf.len() {
        conn.buf.clear();
        conn.start = 0;
    } else if conn.start > COMPACT_THRESHOLD {
        conn.buf.copy_within(conn.start.., 0);
        let len = conn.buf.len() - conn.start;
        conn.buf.truncate(len);
        conn.start = 0;
    }
}

/// Routes one parsed request. Deadlines apply only to the compute
/// endpoints — `/healthz`, `/metrics` and `/admin/*` always answer, so
/// operators can observe a saturated server while it sheds.
fn route_request(
    ctx: &ReactorCtx,
    inflight: &mut HashMap<String, usize>,
    req: &RequestRef<'_>,
    token: u64,
    seq: u64,
    anchor: Instant,
    close_after: bool,
) -> PendingReq {
    let deadline = match parse_deadline(req, anchor) {
        Ok(deadline) => deadline,
        Err(msg) => {
            return PendingReq::done(
                seq,
                anchor,
                Reply::error(400, Endpoint::Other, &msg),
                close_after,
            )
        }
    };
    let inline = |reply: Reply| PendingReq::done(seq, anchor, reply, close_after);
    match (req.method, req.path) {
        ("GET", "/healthz") => inline(health(&ctx.registry)),
        ("GET", "/metrics") => inline(metrics_reply(ctx)),
        ("POST", "/admin/reload") => inline(reload(&ctx.registry)),
        // Known paths with the wrong method are 405, not 404 — and this arm
        // must sit above the generic POST arm or `POST /healthz` would fall
        // through to it and report "no route".
        (_, path @ ("/healthz" | "/metrics" | "/admin/reload")) => inline(Reply::error(
            405,
            Endpoint::Other,
            &format!("{path} does not accept {}", req.method),
        )),
        ("POST", path) => match parse_model_path(path) {
            Some((name, op)) => model_request(
                ctx,
                inflight,
                name,
                op,
                req,
                deadline,
                token,
                seq,
                anchor,
                close_after,
            ),
            None => inline(Reply::error(
                404,
                Endpoint::Other,
                &format!("no route for {path}"),
            )),
        },
        (_, path) => inline(Reply::error(
            404,
            Endpoint::Other,
            &format!("no route for {path}"),
        )),
    }
}

/// Resolves the [`DEADLINE_HEADER`] into an absolute deadline, anchored at
/// the instant the request's bytes started arriving, so queue wait spends
/// the budget too.
fn parse_deadline(req: &RequestRef<'_>, anchor: Instant) -> Result<Option<Instant>, String> {
    match req.header(DEADLINE_HEADER) {
        None => Ok(None),
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Ok(Some(anchor + Duration::from_millis(ms))),
            Err(_) => Err(format!(
                "invalid {DEADLINE_HEADER}: {raw:?} (want milliseconds as a non-negative integer)"
            )),
        },
    }
}

/// A model endpoint named by the URL path. Unlike [`Op`], this carries no
/// parameters: `certify` needs the radius from the request *body*, which
/// is only parsed after routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathOp {
    Transform,
    Predict,
    Certify,
}

/// Extracts `(name, op)` from `/v1/models/{name}/transform|predict|certify`.
fn parse_model_path(path: &str) -> Option<(&str, PathOp)> {
    let rest = path.strip_prefix("/v1/models/")?;
    let (name, op) = rest.split_once('/')?;
    if name.is_empty() {
        return None;
    }
    match op {
        "transform" => Some((name, PathOp::Transform)),
        "predict" => Some((name, PathOp::Predict)),
        "certify" => Some((name, PathOp::Certify)),
        _ => None,
    }
}

fn health(registry: &ModelRegistry) -> Reply {
    let body = serde_json::to_string(&HealthResponse {
        status: "ok".into(),
        models: registry.names(),
        generation: registry.generation(),
    })
    .expect("health response serializes");
    Reply::json(200, body.into_bytes(), Endpoint::Other, 0)
}

fn metrics_reply(ctx: &ReactorCtx) -> Reply {
    Reply {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        body: ctx
            .metrics
            .render(
                ctx.registry.len(),
                ctx.registry.generation(),
                &ctx.registry.precision_labels(),
            )
            .into_bytes(),
        endpoint: Endpoint::Other,
        rows: 0,
        retry_after: None,
    }
}

fn reload(registry: &ModelRegistry) -> Reply {
    match registry.reload() {
        Ok(report) => {
            let body = serde_json::to_string(&ReloadResponse {
                generation: report.generation,
                models: report.models,
            })
            .expect("reload response serializes");
            Reply::json(200, body.into_bytes(), Endpoint::Other, 0)
        }
        Err(e) => Reply::error(500, Endpoint::Other, &format!("reload failed: {e}")),
    }
}

/// Validates a transform/predict/certify request and dispatches it to the
/// batcher (or answers inline: shed, throttled, queue full, validation
/// error).
#[allow(clippy::too_many_arguments)]
fn model_request(
    ctx: &ReactorCtx,
    inflight: &mut HashMap<String, usize>,
    name: &str,
    path_op: PathOp,
    req: &RequestRef<'_>,
    deadline: Option<Instant>,
    token: u64,
    seq: u64,
    anchor: Instant,
    close_after: bool,
) -> PendingReq {
    let endpoint = match path_op {
        PathOp::Transform => Endpoint::Transform,
        PathOp::Predict => Endpoint::Predict,
        PathOp::Certify => Endpoint::Certify,
    };
    let inline = |reply: Reply| PendingReq::done(seq, anchor, reply, close_after);
    // Load shedding, part 1: the budget may already be gone — this
    // request's bytes trickled in (or sat buffered behind pipelined
    // peers) past its own deadline. Shed now, before any compute.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        ctx.metrics.observe_shed();
        return inline(Reply::shed(endpoint));
    }
    let body = match req.body_utf8() {
        Ok(body) => body,
        Err(e) => return inline(Reply::error(400, endpoint, &e.to_string())),
    };
    // Per-endpoint body shape: `/certify` carries the radius (and an
    // optional threshold) alongside the rows; transform/predict carry
    // rows plus an optional group vector.
    let (rows, group, op, certify) = match path_op {
        PathOp::Certify => {
            let parsed: CertifyRequest = match serde_json::from_str(body) {
                Ok(parsed) => parsed,
                Err(e) => {
                    return inline(Reply::error(
                        400,
                        endpoint,
                        &format!("invalid request body: {e}"),
                    ))
                }
            };
            if let Err(e) = ifair::api::check_epsilon(parsed.eps) {
                return inline(Reply::error(400, endpoint, &e.to_string()));
            }
            if let Some(d) = parsed.delta {
                if !d.is_finite() || d < 0.0 {
                    return inline(Reply::error(
                        400,
                        endpoint,
                        &format!("delta must be a finite non-negative number, got {d}"),
                    ));
                }
            }
            let op = Op::Certify {
                eps_bits: parsed.eps.to_bits(),
            };
            let meta = CertifyMeta {
                eps: parsed.eps,
                delta: parsed.delta,
            };
            (parsed.rows, Vec::new(), op, Some(meta))
        }
        PathOp::Transform | PathOp::Predict => {
            let parsed: RowsRequest = match serde_json::from_str(body) {
                Ok(parsed) => parsed,
                Err(e) => {
                    return inline(Reply::error(
                        400,
                        endpoint,
                        &format!("invalid request body: {e}"),
                    ))
                }
            };
            let op = if path_op == PathOp::Predict {
                Op::Predict
            } else {
                Op::Transform
            };
            (parsed.rows, parsed.group.unwrap_or_default(), op, None)
        }
    };
    if rows.is_empty() {
        return inline(Reply::error(400, endpoint, "request has no rows"));
    }
    let width = rows[0].len();
    if width == 0 || rows.iter().any(|r| r.len() != width) {
        return inline(Reply::error(
            400,
            endpoint,
            "rows must be non-empty and rectangular",
        ));
    }
    let Some(model) = ctx.registry.get(name) else {
        return inline(Reply::error(
            404,
            endpoint,
            &format!("no model named `{name}`"),
        ));
    };
    if let Some(expected) = model.artifact.n_input_features() {
        if width != expected {
            return inline(Reply::error(
                400,
                endpoint,
                &format!("rows have {width} features but model `{name}` expects {expected}"),
            ));
        }
    }
    if op == Op::Predict && !model.artifact.has_predictor() {
        return inline(Reply::error(
            400,
            endpoint,
            &format!("model `{name}` has no predictor stage; use transform"),
        ));
    }
    // Certifiability is knowable before dispatch: reject artifacts with no
    // iFair representation (e.g. a bare predictor) with a typed 400 here
    // instead of failing the whole coalesced micro-batch with a 500.
    if path_op == PathOp::Certify && !model.artifact.can_certify() {
        return inline(Reply::error(
            400,
            endpoint,
            &format!(
                "model `{name}` does not support certification: \
                 no iFair representation stage to certify"
            ),
        ));
    }
    if !group.is_empty() && group.len() != rows.len() {
        return inline(Reply::error(
            400,
            endpoint,
            &format!(
                "group has {} entries but the request has {} rows",
                group.len(),
                rows.len()
            ),
        ));
    }
    // Reject out-of-range group labels here, per request: an LFR stage would
    // reject them mid-batch, failing the whole coalesced micro-batch and
    // punishing innocent co-batched requests with a 500.
    if let Some(&bad) = group.iter().find(|&&g| g > 1) {
        return inline(Reply::error(
            400,
            endpoint,
            &format!("group labels must be 0 or 1, got {bad}"),
        ));
    }

    // Admission control: cap concurrent in-flight requests per model so one
    // hot model cannot monopolize the batcher against its neighbours.
    let admission_cap = ctx.config.admission_per_model;
    if admission_cap != 0 && inflight.get(name).copied().unwrap_or(0) >= admission_cap {
        ctx.metrics.observe_throttled();
        return inline(Reply::throttled(endpoint));
    }

    let n_rows = rows.len();
    let cancelled = Arc::new(AtomicBool::new(false));
    let reply: Box<dyn FnOnce(Result<JobOutput, JobError>) + Send> = {
        let comp_tx = ctx.comp_tx.clone();
        let waker = ctx.waker.clone();
        Box::new(move |result| {
            let _ = comp_tx.send(Completion { token, seq, result });
            waker.wake();
        })
    };
    let job = Job {
        model,
        op,
        rows,
        group,
        deadline,
        cancelled: Arc::clone(&cancelled),
        reply,
    };
    match ctx.job_tx.try_send(job) {
        Ok(()) => {
            let slot_held = admission_cap != 0;
            if slot_held {
                *inflight.entry(name.to_string()).or_insert(0) += 1;
            }
            PendingReq {
                seq,
                endpoint,
                anchor,
                enqueued_at: Instant::now(),
                deadline,
                cancelled: Some(cancelled),
                model_name: Some(name.to_string()),
                slot_held,
                rows: n_rows,
                certify,
                reply: None,
                close_after,
            }
        }
        Err(TrySendError::Full(_)) => {
            ctx.metrics.observe_rejected();
            inline(Reply::queue_full(endpoint))
        }
        Err(TrySendError::Disconnected(_)) => {
            inline(Reply::error(503, endpoint, "server is shutting down"))
        }
    }
}

/// Attaches every queued completion to its pending request.
fn drain_completions(st: &mut ReactorState, ctx: &ReactorCtx) {
    while let Ok(comp) = st.comp_rx.try_recv() {
        let ReactorState {
            conns, inflight, ..
        } = st;
        // The connection may have closed (its jobs were cancelled) or the
        // timer sweep may have answered already: late results just drop.
        let Some(conn) = conns.get_mut(&comp.token) else {
            continue;
        };
        let Some(p) = conn
            .pending
            .iter_mut()
            .find(|p| p.seq == comp.seq && p.reply.is_none())
        else {
            continue;
        };
        release_slot(inflight, p);
        let model = p.model_name.clone().unwrap_or_default();
        p.reply = Some(render_completion(
            ctx,
            &model,
            p.endpoint,
            p.rows,
            p.certify,
            comp.result,
        ));
    }
}

/// Builds the wire reply for a batcher result.
fn render_completion(
    ctx: &ReactorCtx,
    model: &str,
    endpoint: Endpoint,
    n_rows: usize,
    certify: Option<CertifyMeta>,
    result: Result<JobOutput, JobError>,
) -> Reply {
    match result {
        Ok(JobOutput::Rows(rows)) => {
            let body = serde_json::to_string(&TransformResponse {
                model: model.to_string(),
                rows,
            })
            .expect("transform response serializes");
            Reply::json(200, body.into_bytes(), endpoint, n_rows)
        }
        Ok(JobOutput::Scored { scores, decisions }) => {
            let body = serde_json::to_string(&PredictResponse {
                model: model.to_string(),
                scores,
                decisions,
            })
            .expect("predict response serializes");
            Reply::json(200, body.into_bytes(), endpoint, n_rows)
        }
        Ok(JobOutput::Certified(certs)) => {
            let meta = certify.unwrap_or(CertifyMeta {
                eps: 0.0,
                delta: None,
            });
            let deltas: Vec<f64> = certs.iter().map(|c| c.delta).collect();
            let methods: Vec<ifair::CertMethod> = certs.iter().map(|c| c.method).collect();
            let certified = meta
                .delta
                .map(|thr| deltas.iter().map(|&d| d <= thr).collect::<Vec<bool>>());
            if let Some(flags) = &certified {
                if !flags.is_empty() {
                    let frac = flags.iter().filter(|&&b| b).count() as f64 / flags.len() as f64;
                    ctx.metrics
                        .observe_certified_fraction(model, meta.eps, frac);
                }
            }
            let body = serde_json::to_string(&CertifyResponse {
                model: model.to_string(),
                eps: meta.eps,
                deltas,
                methods,
                certified,
            })
            .expect("certify response serializes");
            Reply::json(200, body.into_bytes(), endpoint, n_rows)
        }
        // Load shedding, part 2: the batcher found the deadline expired at
        // gather time and shed the job before compute.
        Err(JobError::DeadlineExceeded) => {
            ctx.metrics.observe_shed();
            Reply::shed(endpoint)
        }
        Err(JobError::Failed(msg)) => Reply::error(500, endpoint, &msg),
    }
}

/// Answers overdue dispatched jobs (deadline → 504, reply timeout → 500)
/// and closes idle / write-stalled connections.
fn service_timers(st: &mut ReactorState, ctx: &ReactorCtx) {
    let now = Instant::now();
    let mut to_close: Vec<u64> = Vec::new();
    {
        let ReactorState {
            conns, inflight, ..
        } = st;
        for (&token, conn) in conns.iter_mut() {
            for p in conn.pending.iter_mut() {
                if !p.awaiting_job() {
                    continue;
                }
                if p.deadline.is_some_and(|d| now >= d) {
                    // Compute started (or the queue stalled) and the budget
                    // ran out mid-wait: the request is late, not
                    // shed-before-work. Whatever happens to the job now,
                    // nobody is listening — cancel it so the batcher drops
                    // it instead of computing for nobody.
                    if let Some(c) = &p.cancelled {
                        c.store(true, Ordering::SeqCst);
                    }
                    release_slot(inflight, p);
                    ctx.metrics.observe_deadline_exceeded();
                    p.reply = Some(Reply::error(
                        504,
                        p.endpoint,
                        "deadline exceeded while awaiting inference",
                    ));
                } else if now.duration_since(p.enqueued_at) >= REPLY_TIMEOUT {
                    if let Some(c) = &p.cancelled {
                        c.store(true, Ordering::SeqCst);
                    }
                    release_slot(inflight, p);
                    ctx.metrics.observe_timed_out();
                    p.reply = Some(Reply::error(500, p.endpoint, "inference timed out"));
                }
            }
            if conn.has_output() {
                // The client stopped reading its responses.
                if now.duration_since(conn.last_activity) >= WRITE_TIMEOUT {
                    to_close.push(token);
                }
            } else if conn.pending.is_empty()
                && now.duration_since(conn.last_activity) >= READ_TIMEOUT
            {
                // Idle keep-alive connection (or a slowloris that went
                // quiet): reclaim it.
                to_close.push(token);
            }
        }
    }
    for token in to_close {
        close_conn(st, ctx, token);
    }
}

/// Writes every answerable in-order reply into each connection's output
/// buffer, flushes what the sockets accept, closes what is finished, and
/// reconciles poller interest with output state.
fn progress_conns(st: &mut ReactorState, ctx: &ReactorCtx) {
    let mut to_close: Vec<u64> = Vec::new();
    {
        let ReactorState { conns, poller, .. } = st;
        for (&token, conn) in conns.iter_mut() {
            // Pipelining: responses leave strictly in request order; a
            // completed request behind an incomplete one waits its turn.
            while conn.pending.front().is_some_and(|p| p.reply.is_some()) && !conn.closing {
                let p = conn.pending.pop_front().expect("front checked above");
                let reply = p.reply.expect("reply checked above");
                let close = p.close_after || reply.retry_after.is_some();
                let extra: Vec<(&str, String)> = reply
                    .retry_after
                    .map(|secs| ("Retry-After", secs.to_string()))
                    .into_iter()
                    .collect();
                append_response(
                    &mut conn.out,
                    reply.status,
                    reply.content_type,
                    &extra,
                    !close,
                    &reply.body,
                );
                ctx.metrics
                    .observe(reply.endpoint, reply.rows, p.anchor.elapsed(), reply.status);
                if conn.served > 0 {
                    ctx.metrics.observe_keepalive_reuse();
                }
                conn.served += 1;
                if close {
                    conn.closing = true;
                }
            }
            match try_flush(conn) {
                Ok(true) => {
                    let finished = conn.closing
                        || (conn.no_more_requests && conn.pending.is_empty())
                        || (conn.read_closed && conn.pending.is_empty());
                    if finished {
                        to_close.push(token);
                        continue;
                    }
                }
                Ok(false) => {}
                Err(_) => {
                    to_close.push(token);
                    continue;
                }
            }
            let want = if conn.has_output() {
                INTEREST_READ | INTEREST_WRITE
            } else {
                INTEREST_READ
            };
            if want != conn.interest {
                let _ = poller.reregister(fd_of(&conn.stream), token, want);
                conn.interest = want;
            }
        }
    }
    for token in to_close {
        close_conn(st, ctx, token);
    }
}

/// Writes buffered output until the socket pushes back. `Ok(true)` means
/// the buffer fully drained.
fn try_flush(conn: &mut Conn) -> io::Result<bool> {
    while conn.has_output() {
        // Fault site: a scheduled torn write sends only part of the
        // remaining bytes and then drops the connection — the client sees
        // a short body that contradicts Content-Length.
        if ifair::api::faults::check_torn("serve.conn.write") {
            let half = (conn.out.len() - conn.out_pos) / 2;
            let _ = conn
                .stream
                .write(&conn.out[conn.out_pos..conn.out_pos + half]);
            return Err(io::Error::other("injected torn write"));
        }
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    Ok(true)
}

/// Removes a connection: deregisters it, cancels its in-flight jobs, and
/// releases any admission slots they held.
fn close_conn(st: &mut ReactorState, ctx: &ReactorCtx, token: u64) {
    let Some(mut conn) = st.conns.remove(&token) else {
        return;
    };
    let _ = st.poller.deregister(fd_of(&conn.stream));
    for mut p in conn.pending.drain(..) {
        if let Some(c) = &p.cancelled {
            c.store(true, Ordering::SeqCst);
        }
        release_slot(&mut st.inflight, &mut p);
    }
    ctx.metrics.observe_connection_closed();
}

/// Releases a pending request's admission slot, exactly once.
fn release_slot(inflight: &mut HashMap<String, usize>, p: &mut PendingReq) {
    if !p.slot_held {
        return;
    }
    p.slot_held = false;
    if let Some(name) = &p.model_name {
        if let Some(n) = inflight.get_mut(name) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                inflight.remove(name);
            }
        }
    }
}

// ----------------------------------------------------------------- wire types

/// Body of `POST /v1/models/{name}/transform` and `.../predict`.
#[derive(Debug, Deserialize)]
struct RowsRequest {
    /// Feature rows, all of the model's input width.
    rows: Vec<Vec<f64>>,
    /// Optional per-row protected-group membership (0/1); only the LFR
    /// stage reads it. Defaults to all zeros.
    #[serde(default)]
    group: Option<Vec<u8>>,
}

/// Body of a successful transform response.
#[derive(Debug, Serialize)]
struct TransformResponse {
    model: String,
    rows: Vec<Vec<f64>>,
}

/// Body of a successful predict response.
#[derive(Debug, Serialize)]
struct PredictResponse {
    model: String,
    /// `predict_proba` of the terminal predictor.
    scores: Vec<f64>,
    /// `predict` (hard decisions) of the terminal predictor.
    decisions: Vec<f64>,
}

/// Body of `POST /v1/models/{name}/certify`.
#[derive(Debug, Deserialize)]
struct CertifyRequest {
    /// Feature rows to certify, all of the model's input width.
    rows: Vec<Vec<f64>>,
    /// L∞ perturbation radius each row is certified against.
    eps: f64,
    /// Optional threshold: when present the response also reports, per
    /// row, whether the certified delta met it, and the server updates
    /// the `ifair_certified_fraction` gauge for this model and radius.
    #[serde(default)]
    delta: Option<f64>,
}

/// Body of a successful certify response.
#[derive(Debug, Serialize)]
struct CertifyResponse {
    model: String,
    /// The radius the request asked about, echoed back.
    eps: f64,
    /// Per-row certified output-space bounds: no input within `eps` (L∞)
    /// of row *i* maps farther than `deltas[i]` (L2) from the row's image.
    deltas: Vec<f64>,
    /// How each row's bound was obtained.
    methods: Vec<ifair::CertMethod>,
    /// Per-row `deltas[i] <= delta` verdicts; `null` when the request
    /// carried no threshold.
    certified: Option<Vec<bool>>,
}

/// Body of every error response.
#[derive(Debug, Serialize)]
struct ErrorResponse {
    error: String,
}

/// Body of `GET /healthz`.
#[derive(Debug, Serialize)]
struct HealthResponse {
    status: String,
    models: Vec<String>,
    generation: u64,
}

/// Body of a successful `POST /admin/reload`.
#[derive(Debug, Serialize)]
struct ReloadResponse {
    generation: u64,
    models: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_paths_parse() {
        assert_eq!(
            parse_model_path("/v1/models/credit/transform"),
            Some(("credit", PathOp::Transform))
        );
        assert_eq!(
            parse_model_path("/v1/models/m2/predict"),
            Some(("m2", PathOp::Predict))
        );
        assert_eq!(
            parse_model_path("/v1/models/m3/certify"),
            Some(("m3", PathOp::Certify))
        );
        assert_eq!(parse_model_path("/v1/models//transform"), None);
        assert_eq!(parse_model_path("/v1/models/m/evaluate"), None);
        assert_eq!(parse_model_path("/v2/models/m/transform"), None);
        assert_eq!(parse_model_path("/v1/models/m"), None);
    }

    #[test]
    fn rows_request_accepts_optional_group() {
        let r: RowsRequest = serde_json::from_str(r#"{"rows":[[1.0,2.0]]}"#).unwrap();
        assert!(r.group.is_none());
        let r: RowsRequest = serde_json::from_str(r#"{"rows":[[1.0,2.0]],"group":[1]}"#).unwrap();
        assert_eq!(r.group, Some(vec![1]));
        assert!(serde_json::from_str::<RowsRequest>(r#"{"group":[1]}"#).is_err());
    }

    #[test]
    fn certify_request_requires_eps_and_allows_delta() {
        let r: CertifyRequest = serde_json::from_str(r#"{"rows":[[1.0,2.0]],"eps":0.05}"#).unwrap();
        assert_eq!(r.eps, 0.05);
        assert!(r.delta.is_none());
        let r: CertifyRequest =
            serde_json::from_str(r#"{"rows":[[1.0,2.0]],"eps":0.05,"delta":0.1}"#).unwrap();
        assert_eq!(r.delta, Some(0.1));
        // eps is mandatory: rows alone must not parse.
        assert!(serde_json::from_str::<CertifyRequest>(r#"{"rows":[[1.0]]}"#).is_err());
    }

    #[test]
    fn admission_slots_release_exactly_once() {
        let mut inflight = HashMap::new();
        inflight.insert("m".to_string(), 2usize);
        let mut p = PendingReq {
            seq: 0,
            endpoint: Endpoint::Transform,
            anchor: Instant::now(),
            enqueued_at: Instant::now(),
            deadline: None,
            cancelled: None,
            model_name: Some("m".to_string()),
            slot_held: true,
            rows: 1,
            certify: None,
            reply: None,
            close_after: false,
        };
        release_slot(&mut inflight, &mut p);
        assert_eq!(inflight.get("m"), Some(&1));
        // A second release (timer answered, then the connection closed)
        // must be a no-op.
        release_slot(&mut inflight, &mut p);
        assert_eq!(inflight.get("m"), Some(&1));
        let mut q = PendingReq {
            slot_held: true,
            model_name: Some("m".to_string()),
            ..p
        };
        release_slot(&mut inflight, &mut q);
        assert!(!inflight.contains_key("m"), "zero entries are pruned");
    }
}
