//! The model registry: named, versioned, hot-reloadable artifacts.
//!
//! A registry maps model names to loaded [`Artifact`]s and remembers where
//! each came from, so `POST /admin/reload` can re-read every file and swap
//! the whole map atomically. In-flight requests keep serving the snapshot
//! they resolved (`Arc<LoadedModel>`), so a reload never drops or garbles a
//! response; a reload that fails to load *any* file changes nothing.

use crate::artifact::Artifact;
use crate::error::ServeError;
use ifair::core::Precision;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

/// Where a named model comes from, and the precision it serves at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// The name the model is served under (`/v1/models/{name}/...`).
    pub name: String,
    /// The artifact file backing it.
    pub path: PathBuf,
    /// The scalar precision the iFair transform runs at. Artifacts are
    /// always *stored* in f64; `@f32` lowers the representation stage at
    /// serving time (see `docs/ARCHITECTURE.md`).
    pub precision: Precision,
}

impl ModelSpec {
    /// Parses a `--model` argument: `[name=]path.json[@f32|@f64]`. Without
    /// a `name=` prefix the file stem becomes the name; without a precision
    /// suffix the model serves at full f64.
    pub fn parse(arg: &str) -> Result<ModelSpec, ServeError> {
        let (arg, precision) = match arg.rsplit_once('@') {
            Some((rest, suffix)) => {
                let precision = Precision::parse(suffix).ok_or_else(|| {
                    ServeError::Config(format!(
                        "unknown precision suffix `@{suffix}` (expected `@f32` or `@f64`)"
                    ))
                })?;
                (rest, precision)
            }
            None => (arg, Precision::F64),
        };
        let (name, path) = match arg.split_once('=') {
            Some((name, path)) => (name.to_string(), PathBuf::from(path)),
            None => {
                let path = PathBuf::from(arg);
                let stem = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .map(str::to_string)
                    .ok_or_else(|| {
                        ServeError::Config(format!("cannot derive a model name from `{arg}`"))
                    })?;
                (stem, path)
            }
        };
        if name.is_empty() || name.contains('/') {
            return Err(ServeError::Config(format!(
                "model name `{name}` must be non-empty and slash-free"
            )));
        }
        Ok(ModelSpec {
            name,
            path,
            precision,
        })
    }
}

/// One loaded artifact, pinned to the registry generation that loaded it.
#[derive(Debug)]
pub struct LoadedModel {
    /// The serving name.
    pub name: String,
    /// The file the artifact was read from.
    pub path: PathBuf,
    /// The decoded artifact.
    pub artifact: Artifact,
    /// The scalar precision the iFair transform runs at for this model.
    pub precision: Precision,
    /// Registry generation this snapshot belongs to (1 = initial load).
    pub generation: u64,
}

/// Outcome of a successful [`ModelRegistry::reload`].
#[derive(Debug, Clone)]
pub struct ReloadReport {
    /// The new registry generation.
    pub generation: u64,
    /// The names reloaded, sorted.
    pub models: Vec<String>,
}

/// Thread-safe map of serving names to loaded artifacts.
#[derive(Debug)]
pub struct ModelRegistry {
    specs: Vec<ModelSpec>,
    models: RwLock<HashMap<String, Arc<LoadedModel>>>,
    generation: AtomicU64,
    reloads: AtomicU64,
    /// Serializes reloads so two concurrent `/admin/reload`s cannot
    /// interleave their load-then-swap sequences.
    reload_lock: Mutex<()>,
}

impl ModelRegistry {
    /// Loads every spec from disk; fails if any file is missing/invalid or
    /// two specs share a name.
    pub fn load(specs: Vec<ModelSpec>) -> Result<ModelRegistry, ServeError> {
        if specs.is_empty() {
            return Err(ServeError::Config(
                "a server needs at least one --model".into(),
            ));
        }
        let mut seen = HashMap::new();
        for spec in &specs {
            if let Some(prev) = seen.insert(spec.name.clone(), &spec.path) {
                return Err(ServeError::Config(format!(
                    "model name `{}` is declared twice ({} and {})",
                    spec.name,
                    prev.display(),
                    spec.path.display()
                )));
            }
        }
        let models = load_all(&specs, 1)?;
        Ok(ModelRegistry {
            specs,
            models: RwLock::new(models),
            generation: AtomicU64::new(1),
            reloads: AtomicU64::new(0),
            reload_lock: Mutex::new(()),
        })
    }

    /// Read access to the model map, recovering (not propagating) poison:
    /// the map is only ever *replaced* wholesale under the write lock, so a
    /// writer that panicked mid-swap still left a fully-consistent map —
    /// either generation is safe to serve.
    fn models(&self) -> RwLockReadGuard<'_, HashMap<String, Arc<LoadedModel>>> {
        self.models
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The current snapshot of `name`, if loaded.
    pub fn get(&self, name: &str) -> Option<Arc<LoadedModel>> {
        self.models().get(name).cloned()
    }

    /// Sorted names of the loaded models.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models().keys().cloned().collect();
        names.sort();
        names
    }

    /// Sorted `(name, precision label)` pairs of the loaded models, for the
    /// `/metrics` per-model precision gauges.
    pub fn precision_labels(&self) -> Vec<(String, &'static str)> {
        let mut labels: Vec<(String, &'static str)> = self
            .models()
            .values()
            .map(|m| (m.name.clone(), m.precision.label()))
            .collect();
        labels.sort();
        labels
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.models().len()
    }

    /// `true` when no model is loaded (unreachable via [`ModelRegistry::load`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current registry generation (1 after the initial load, +1 per
    /// successful reload).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Number of successful reloads.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::SeqCst)
    }

    /// Re-reads every artifact file and swaps the whole map atomically.
    ///
    /// All files are loaded **before** the write lock is taken, so requests
    /// keep flowing during the (potentially slow) decode, and a failure
    /// leaves the previous generation fully intact.
    pub fn reload(&self) -> Result<ReloadReport, ServeError> {
        // Poison recovery on both locks: a reload that panicked changed
        // nothing observable (the map swap is a single assignment), so the
        // next reload can proceed as if the failed one never started.
        let _serialized = self
            .reload_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let generation = self.generation() + 1;
        let fresh = load_all(&self.specs, generation)?;
        let mut models = fresh.keys().cloned().collect::<Vec<_>>();
        models.sort();
        *self
            .models
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = fresh;
        self.generation.store(generation, Ordering::SeqCst);
        self.reloads.fetch_add(1, Ordering::SeqCst);
        Ok(ReloadReport { generation, models })
    }
}

/// Loads every spec, tagging the snapshots with `generation`.
fn load_all(
    specs: &[ModelSpec],
    generation: u64,
) -> Result<HashMap<String, Arc<LoadedModel>>, ServeError> {
    let mut models = HashMap::with_capacity(specs.len());
    for spec in specs {
        models.insert(spec.name.clone(), Arc::new(load_one(spec, generation)?));
    }
    Ok(models)
}

/// Reads and decodes one artifact file.
fn load_one(spec: &ModelSpec, generation: u64) -> Result<LoadedModel, ServeError> {
    let json = read_artifact(&spec.path)?;
    let artifact = Artifact::from_json(&json).map_err(|source| ServeError::Artifact {
        path: spec.path.display().to_string(),
        source,
    })?;
    Ok(LoadedModel {
        name: spec.name.clone(),
        path: spec.path.clone(),
        artifact,
        precision: spec.precision,
        generation,
    })
}

/// Reads an artifact file to a string with a path-bearing error.
pub fn read_artifact(path: &Path) -> Result<String, ServeError> {
    // Fault site: a scheduled I/O error here makes a reload fail cleanly —
    // the previous registry generation must stay fully intact.
    ifair::api::faults::check_io("serve.artifact.read")
        .and_then(|()| std::fs::read_to_string(path))
        .map_err(|e| ServeError::io(format!("reading artifact `{}`", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifair::core::{IFair, IFairConfig};
    use ifair::linalg::Matrix;

    fn tiny_model_json(seed: u64) -> String {
        let x = Matrix::from_rows(
            (0..12)
                .map(|i| vec![i as f64 / 12.0, 1.0 - i as f64 / 12.0, (i % 2) as f64])
                .collect(),
        )
        .unwrap();
        let config = IFairConfig {
            k: 2,
            max_iters: 10,
            n_restarts: 1,
            seed,
            ..Default::default()
        };
        IFair::fit(&x, &[false, false, true], &config)
            .unwrap()
            .to_json()
            .unwrap()
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ifair-serve-registry-{tag}-{}.json",
            std::process::id()
        ))
    }

    #[test]
    fn spec_parsing_accepts_both_forms() {
        let s = ModelSpec::parse("credit=/tmp/credit.json").unwrap();
        assert_eq!(s.name, "credit");
        assert_eq!(s.path, PathBuf::from("/tmp/credit.json"));
        assert_eq!(s.precision, Precision::F64);
        let s = ModelSpec::parse("/tmp/census_v3.json").unwrap();
        assert_eq!(s.name, "census_v3");
        assert!(ModelSpec::parse("=path.json").is_err());
        assert!(ModelSpec::parse("a/b=path.json").is_err());
    }

    #[test]
    fn spec_parsing_reads_the_precision_suffix() {
        let s = ModelSpec::parse("credit=/tmp/credit.json@f32").unwrap();
        assert_eq!(s.name, "credit");
        assert_eq!(s.path, PathBuf::from("/tmp/credit.json"));
        assert_eq!(s.precision, Precision::F32);
        // `@f64` is accepted and spells out the default.
        let s = ModelSpec::parse("/tmp/census_v3.json@f64").unwrap();
        assert_eq!(s.name, "census_v3");
        assert_eq!(s.precision, Precision::F64);
        // Bare path + suffix: the stem (without the suffix) names the model.
        let s = ModelSpec::parse("/tmp/census_v3.json@f32").unwrap();
        assert_eq!(s.name, "census_v3");
        assert_eq!(s.precision, Precision::F32);
        let err = ModelSpec::parse("m=/tmp/m.json@f16").unwrap_err();
        assert!(err.to_string().contains("@f16"));
    }

    #[test]
    fn load_get_and_reload_swap_generations() {
        let path = temp_path("reload");
        std::fs::write(&path, tiny_model_json(1)).unwrap();
        let registry = ModelRegistry::load(vec![ModelSpec {
            name: "m".into(),
            path: path.clone(),
            precision: Precision::F32,
        }])
        .unwrap();
        assert_eq!(registry.names(), vec!["m".to_string()]);
        assert_eq!(registry.precision_labels(), vec![("m".to_string(), "f32")]);
        assert_eq!(registry.get("m").unwrap().precision, Precision::F32);
        assert_eq!(registry.generation(), 1);
        let before = registry.get("m").unwrap();
        assert_eq!(before.generation, 1);
        assert!(registry.get("nope").is_none());

        // Rewrite the file with a different seed and reload: new snapshot,
        // old Arc still usable.
        std::fs::write(&path, tiny_model_json(2)).unwrap();
        let report = registry.reload().unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(registry.reloads(), 1);
        let after = registry.get("m").unwrap();
        assert_eq!(after.generation, 2);
        assert_eq!(before.generation, 1, "in-flight snapshot untouched");

        // A broken file fails the reload and keeps the old generation.
        std::fs::write(&path, "{broken").unwrap();
        assert!(registry.reload().is_err());
        assert_eq!(registry.generation(), 2);
        assert_eq!(registry.get("m").unwrap().generation, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_names_and_empty_registries_are_rejected() {
        assert!(ModelRegistry::load(vec![]).is_err());
        let spec = |p: &str| ModelSpec {
            name: "m".into(),
            path: PathBuf::from(p),
            precision: Precision::F64,
        };
        let err = ModelRegistry::load(vec![spec("a.json"), spec("b.json")]).unwrap_err();
        assert!(err.to_string().contains("declared twice"));
    }

    #[test]
    fn missing_file_errors_carry_the_path() {
        let err = ModelRegistry::load(vec![ModelSpec {
            name: "m".into(),
            path: PathBuf::from("/definitely/not/here.json"),
            precision: Precision::F64,
        }])
        .unwrap_err();
        assert!(err.to_string().contains("/definitely/not/here.json"));
    }
}
