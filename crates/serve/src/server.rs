//! The HTTP inference server: configuration, bind, spawn, shutdown.
//!
//! Threading model (all `std`, no async runtime):
//!
//! ```text
//! reactor (1 thread, epoll/poll readiness loop)
//!   accept ─▶ nonblocking read ─▶ zero-copy parse ─▶ validate ─▶ enqueue Job
//!      ▲                                                           │
//!      └────────── waker ◀── completion channel ◀───────┐          ▼
//!                                               batcher (1 thread)
//!                        coalesce pending jobs ─▶ ONE pooled forward pass
//!                                               │
//!                               ifair_core::par::WorkerPool (n_threads lanes)
//! ```
//!
//! The reactor multiplexes every connection (keep-alive, pipelining,
//! per-model admission control — see `reactor.rs`); the batcher owns all
//! model math. Artifacts hot-reload via `POST /admin/reload`: the
//! registry swap is atomic and in-flight jobs hold their own `Arc`
//! snapshot, so no request is ever dropped or served a half-updated
//! model.

use crate::batch::spawn_batcher;
use crate::error::ServeError;
use crate::metrics::Metrics;
use crate::poll::{fd_of, waker_pair, PollBackend, Poller, Waker, INTEREST_READ};
use crate::reactor::{spawn_reactor, TOKEN_LISTENER, TOKEN_WAKER};
use crate::registry::ModelRegistry;
use ifair::core::par::{resolve_threads, WorkerPool};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of [`Server::bind`]. The defaults suit a small container;
/// every knob is exposed as an `ifair serve` flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker-pool lanes for the forward pass; `0` = all hardware threads.
    pub n_threads: usize,
    /// Bounded job queue between reactor and batcher; when full, new
    /// requests are shed with `503` instead of queueing unboundedly.
    pub queue_capacity: usize,
    /// Row cap of one micro-batch (coalesced across concurrent requests).
    pub max_batch_rows: usize,
    /// Maximum concurrently open connections; extras are shed with `503`
    /// at accept. `0` = unlimited.
    pub max_connections: usize,
    /// Requests served per keep-alive connection before the server closes
    /// it (`Connection: close` on the last response). `0` = unlimited.
    pub keep_alive_requests: usize,
    /// Per-model in-flight request cap (admission control); requests over
    /// it are answered `429` with `Retry-After`. `0` = unlimited.
    pub admission_per_model: usize,
    /// Readiness backend: `epoll` on Linux, `poll(2)` fallback.
    pub backend: PollBackend,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            n_threads: 0,
            queue_capacity: 128,
            max_batch_rows: 512,
            max_connections: 1024,
            keep_alive_requests: 0,
            admission_per_model: 0,
            backend: PollBackend::Auto,
        }
    }
}

/// How long the reactor waits for the batcher before answering 500.
/// A request that carries an earlier deadline waits only that long.
pub(crate) const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// The per-request deadline header: total budget in milliseconds, measured
/// from the moment the request's first bytes arrived. Queue wait counts
/// against it — a request that waited out its budget is shed, never
/// computed.
pub const DEADLINE_HEADER: &str = "X-Ifair-Deadline-Ms";

/// `Retry-After` seconds suggested on shed 503s and throttled 429s.
pub(crate) const RETRY_AFTER_SECS: u64 = 1;

/// A connection with no buffered requests and no traffic for this long is
/// reclaimed (idle keep-alive / slowloris guard).
pub(crate) const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A connection whose client stops reading its responses is closed after
/// this long without write progress.
pub(crate) const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound-but-not-yet-running server. [`Server::spawn`] starts the threads.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
    poller: Poller,
    waker: Waker,
    wake_rx: UnixStream,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:8080"`, or port `0` for an ephemeral
    /// port) over an already-loaded registry, opens the readiness poller,
    /// and registers the listener and wake channel — everything fallible
    /// happens here so [`Server::spawn`] cannot fail.
    pub fn bind(
        addr: &str,
        registry: ModelRegistry,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::io(format!("binding {addr}"), e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::io("making the listener nonblocking", e))?;
        let mut poller = Poller::new(config.backend)
            .map_err(|e| ServeError::io("creating the readiness poller", e))?;
        let (waker, wake_rx) =
            waker_pair().map_err(|e| ServeError::io("creating the reactor waker", e))?;
        poller
            .register(fd_of(&listener), TOKEN_LISTENER, INTEREST_READ)
            .map_err(|e| ServeError::io("registering the listener", e))?;
        poller
            .register(fd_of(&wake_rx), TOKEN_WAKER, INTEREST_READ)
            .map_err(|e| ServeError::io("registering the waker", e))?;
        Ok(Server {
            listener,
            registry: Arc::new(registry),
            config,
            poller,
            waker,
            wake_rx,
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has a local address")
    }

    /// The readiness backend in use (`"epoll"` or `"poll"`), for the
    /// startup banner.
    pub fn backend_name(&self) -> &'static str {
        self.poller.backend_name()
    }

    /// Starts the reactor and batcher; returns a handle for introspection
    /// and shutdown.
    pub fn spawn(self) -> ServerHandle {
        let Server {
            listener,
            registry,
            config,
            poller,
            waker,
            wake_rx,
        } = self;
        let addr = listener.local_addr().expect("bound listener");
        let metrics = Arc::new(Metrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(WorkerPool::new(resolve_threads(config.n_threads)));
        let (job_tx, batcher) = spawn_batcher(
            Arc::clone(&pool),
            config.queue_capacity,
            config.max_batch_rows,
            Arc::clone(&shutdown),
            Arc::clone(&metrics),
        );
        // The reactor owns the only job sender: when its loop exits, the
        // batcher's queue disconnects and it drains and exits too.
        let reactor = spawn_reactor(
            listener,
            poller,
            waker.clone(),
            wake_rx,
            Arc::clone(&registry),
            Arc::clone(&metrics),
            job_tx,
            Arc::clone(&shutdown),
            config,
        );

        ServerHandle {
            addr,
            shutdown,
            reactor: Some(reactor),
            batcher: Some(batcher),
            registry,
            metrics,
            waker,
        }
    }
}

/// A running server: bound address, shared state, and orderly shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    reactor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    waker: Waker,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the server serves from (shared — reloads through this
    /// handle are visible to the server immediately).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The server's metrics counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Blocks the calling thread until the server stops (for the CLI, that
    /// is effectively forever — processes are stopped by signal).
    pub fn wait(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        self.stop_threads();
    }

    /// Stops accepting, drains in-flight requests (bounded), and joins
    /// every thread.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Kick the reactor out of its wait so it notices the flag.
        self.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // The reactor's exit dropped the only job sender, so the batcher
        // drains its queue and exits.
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_threads();
    }
}
