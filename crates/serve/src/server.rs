//! The HTTP inference server: accept loop, worker threads, routing.
//!
//! Threading model (all `std`, no async runtime):
//!
//! ```text
//! accept loop ──try_send──▶ bounded connection queue (503 when full)
//!                                   │
//!                     http workers (N threads, shared receiver)
//!                parse request ─▶ validate ─▶ enqueue Job ─▶ wait reply
//!                                   │
//!                          batcher (1 thread)
//!        coalesce pending jobs ─▶ ONE pooled forward pass ─▶ scatter
//!                                   │
//!                   ifair_core::par::WorkerPool (n_threads lanes)
//! ```
//!
//! Artifacts hot-reload via `POST /admin/reload`: the registry swap is
//! atomic and in-flight jobs hold their own `Arc` snapshot, so no request
//! is ever dropped or served a half-updated model.

use crate::batch::{spawn_batcher, Job, JobError, JobOutput, Op};
use crate::error::ServeError;
use crate::http::{read_request, write_response, write_response_with, HttpError, Request};
use crate::metrics::{Endpoint, Metrics};
use crate::registry::ModelRegistry;
use crate::supervisor::{recover_lock, supervise, ThreadKind};
use ifair::core::par::{resolve_threads, WorkerPool};
use serde::{Deserialize, Serialize};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of [`Server::bind`]. The defaults suit a small container;
/// every knob is exposed as an `ifair serve` flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker-pool lanes for the forward pass; `0` = all hardware threads.
    pub n_threads: usize,
    /// Connection-handling threads (request parsing / response writing).
    pub http_workers: usize,
    /// Bounded queue of accepted-but-unhandled connections; when full, new
    /// connections are shed with `503` instead of queueing unboundedly.
    pub queue_capacity: usize,
    /// Row cap of one micro-batch (coalesced across concurrent requests).
    pub max_batch_rows: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            n_threads: 0,
            http_workers: 4,
            queue_capacity: 128,
            max_batch_rows: 512,
        }
    }
}

/// How long a handler waits for the batcher before giving up with a 500.
/// A request that carries an earlier deadline waits only that long.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// The per-request deadline header: total budget in milliseconds, measured
/// from the moment the connection was accepted. Queue wait counts against
/// it — a request that waited out its budget is shed, never computed.
pub const DEADLINE_HEADER: &str = "X-Ifair-Deadline-Ms";

/// `Retry-After` seconds suggested on a shed 503.
const RETRY_AFTER_SECS: u64 = 1;

/// Per-connection socket read timeout (slowloris guard).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-connection socket write timeout (guards against clients that stop
/// reading their response).
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound-but-not-yet-running server. [`Server::spawn`] starts the threads.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:8080"`, or port `0` for an ephemeral
    /// port) over an already-loaded registry.
    pub fn bind(
        addr: &str,
        registry: ModelRegistry,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::io(format!("binding {addr}"), e))?;
        Ok(Server {
            listener,
            registry: Arc::new(registry),
            config,
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has a local address")
    }

    /// Starts the accept loop, HTTP workers and batcher; returns a handle
    /// for introspection and shutdown.
    pub fn spawn(self) -> ServerHandle {
        let Server {
            listener,
            registry,
            config,
        } = self;
        let addr = listener.local_addr().expect("bound listener");
        let metrics = Arc::new(Metrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(WorkerPool::new(resolve_threads(config.n_threads)));
        let (job_tx, batcher) = spawn_batcher(
            Arc::clone(&pool),
            config.queue_capacity,
            config.max_batch_rows,
            Arc::clone(&shutdown),
            Arc::clone(&metrics),
        );

        // Each queued connection carries its accept timestamp: per-request
        // deadline budgets start ticking at accept, so time spent waiting in
        // this queue counts against them.
        let (conn_tx, conn_rx) = sync_channel::<(TcpStream, Instant)>(config.queue_capacity.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(config.http_workers.max(1));
        for w in 0..config.http_workers.max(1) {
            let conn_rx = Arc::clone(&conn_rx);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            let job_tx = job_tx.clone();
            workers.push(supervise(
                format!("ifair-serve-http-{w}"),
                ThreadKind::HttpWorker,
                Arc::clone(&shutdown),
                Arc::clone(&metrics),
                move || worker_loop(&conn_rx, &registry, &metrics, &job_tx),
            ));
        }
        // Workers hold the only job senders: when they exit, the batcher's
        // queue disconnects and it drains and exits too.
        drop(job_tx);

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let accept_shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            let accept_metrics = Arc::clone(&metrics);
            supervise(
                "ifair-serve-accept".into(),
                ThreadKind::Accept,
                shutdown,
                metrics,
                move || accept_loop(&listener, &conn_tx, &accept_shutdown, &accept_metrics),
            )
        };

        ServerHandle {
            addr,
            shutdown,
            accept: Some(accept),
            workers,
            batcher: Some(batcher),
            registry,
            metrics,
        }
    }
}

/// A running server: bound address, shared state, and orderly shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the server serves from (shared — reloads through this
    /// handle are visible to the server immediately).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The server's metrics counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Blocks the calling thread until the server stops (for the CLI, that
    /// is effectively forever — processes are stopped by signal).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stop_threads();
    }

    /// Stops accepting, drains queued connections, and joins every thread.
    /// Requests already in flight complete normally.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Accepts connections and feeds the bounded queue, shedding with 503 when
/// the queue is full.
fn accept_loop(
    listener: &TcpListener,
    conn_tx: &SyncSender<(TcpStream, Instant)>,
    shutdown: &AtomicBool,
    metrics: &Metrics,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Fault site: a scheduled panic kills the accept thread between
        // connections; the supervisor respawns it and `incoming()` resumes
        // on the same listener, so no port is ever abandoned.
        ifair::api::faults::check_panic("serve.accept");
        match conn {
            Ok(stream) => match conn_tx.try_send((stream, Instant::now())) {
                Ok(()) => {}
                Err(TrySendError::Full((mut stream, _))) => {
                    metrics.observe_rejected();
                    let _ = write_response(
                        &mut stream,
                        503,
                        "application/json",
                        b"{\"error\":\"request queue is full\"}",
                    );
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            // Transient accept errors (e.g. the peer vanished between
            // accept and handshake) are not fatal to the server.
            Err(_) => continue,
        }
    }
}

/// One HTTP worker: pop connections off the shared queue until it closes.
fn worker_loop(
    conn_rx: &Mutex<Receiver<(TcpStream, Instant)>>,
    registry: &ModelRegistry,
    metrics: &Metrics,
    job_tx: &SyncSender<Job>,
) {
    loop {
        let conn = {
            // `recover_lock`, not `lock().expect(...)`: a worker that
            // panicked while holding this guard (see the fault site below)
            // poisons the mutex, and its supervised replacement — plus every
            // sibling — must keep draining the queue regardless.
            let guard = recover_lock(conn_rx);
            // Fault site: a panic here poisons the connection-queue mutex,
            // proving the recovery path above under chaos.
            ifair::api::faults::check_panic("serve.http-worker.locked");
            guard.recv()
        };
        match conn {
            Ok((stream, accepted_at)) => {
                // Fault site: a panic between dequeue and handling kills the
                // worker (connection dropped); the supervisor respawns it.
                ifair::api::faults::check_panic("serve.http-worker");
                handle_connection(stream, accepted_at, registry, metrics, job_tx);
            }
            Err(_) => break,
        }
    }
}

/// A fully-formed HTTP reply plus the bookkeeping the metrics need.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    endpoint: Endpoint,
    /// Data rows in the response (transform/predict only).
    rows: usize,
    /// `Retry-After` seconds; set on shed 503s so well-behaved clients back
    /// off instead of hammering a saturated server.
    retry_after: Option<u64>,
}

impl Reply {
    fn json(status: u16, body: Vec<u8>, endpoint: Endpoint, rows: usize) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body,
            endpoint,
            rows,
            retry_after: None,
        }
    }

    fn error(status: u16, endpoint: Endpoint, message: &str) -> Reply {
        let body = serde_json::to_string(&ErrorResponse {
            error: message.to_string(),
        })
        .unwrap_or_else(|_| "{\"error\":\"error\"}".into());
        Reply::json(status, body.into_bytes(), endpoint, 0)
    }

    /// The load-shedding 503: deadline budget exhausted before compute.
    fn shed(endpoint: Endpoint) -> Reply {
        let mut reply = Reply::error(
            503,
            endpoint,
            "deadline budget exhausted before compute; request shed",
        );
        reply.retry_after = Some(RETRY_AFTER_SECS);
        reply
    }
}

fn handle_connection(
    mut stream: TcpStream,
    accepted_at: Instant,
    registry: &ModelRegistry,
    metrics: &Metrics,
    job_tx: &SyncSender<Job>,
) {
    let _ = stream.set_nodelay(true);
    // A connection whose timeouts cannot be armed is a liability: without a
    // read timeout a slowloris client parks this worker forever, without a
    // write timeout a client that stops reading wedges it in write_all. If
    // either knob fails, count it and drop the connection rather than serve
    // it unguarded.
    if let Err(e) = stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(WRITE_TIMEOUT)))
    {
        metrics.observe_socket_config_error();
        let _ = write_response(
            &mut stream,
            500,
            "application/json",
            format!("{{\"error\":\"socket configuration failed: {e}\"}}").as_bytes(),
        );
        return;
    }
    let request = {
        let mut reader = BufReader::new(&mut stream);
        read_request(&mut reader)
    };
    let reply = match request {
        Ok(request) => match parse_deadline(&request, accepted_at) {
            Ok(deadline) => dispatch(&request, deadline, registry, metrics, job_tx),
            Err(msg) => Reply::error(400, Endpoint::Other, &msg),
        },
        // Nothing arrived (health-checker port probe, client gave up):
        // nothing to answer, nothing to count.
        Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
        Err(HttpError::TooLarge(_)) => Reply::error(413, Endpoint::Other, "request body too large"),
        Err(HttpError::Malformed(msg)) => Reply::error(400, Endpoint::Other, &msg),
    };
    let extra: Vec<(&str, String)> = reply
        .retry_after
        .map(|secs| ("Retry-After", secs.to_string()))
        .into_iter()
        .collect();
    let _ = write_response_with(
        &mut stream,
        reply.status,
        reply.content_type,
        &extra,
        &reply.body,
    );
    metrics.observe(
        reply.endpoint,
        reply.rows,
        accepted_at.elapsed(),
        reply.status,
    );
}

/// Resolves the [`DEADLINE_HEADER`] into an absolute deadline, anchored at
/// the accept timestamp so queue wait spends the budget too.
fn parse_deadline(request: &Request, accepted_at: Instant) -> Result<Option<Instant>, String> {
    match request.header(DEADLINE_HEADER) {
        None => Ok(None),
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Ok(Some(accepted_at + Duration::from_millis(ms))),
            Err(_) => Err(format!(
                "invalid {DEADLINE_HEADER}: {raw:?} (want milliseconds as a non-negative integer)"
            )),
        },
    }
}

/// Routes one parsed request to its handler. The deadline applies only to
/// the compute endpoints — `/healthz`, `/metrics` and `/admin/*` always
/// answer, so operators can observe a saturated server while it sheds.
fn dispatch(
    request: &Request,
    deadline: Option<Instant>,
    registry: &ModelRegistry,
    metrics: &Metrics,
    job_tx: &SyncSender<Job>,
) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => health(registry),
        ("GET", "/metrics") => Reply {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: metrics
                .render(
                    registry.len(),
                    registry.generation(),
                    &registry.precision_labels(),
                )
                .into_bytes(),
            endpoint: Endpoint::Other,
            rows: 0,
            retry_after: None,
        },
        ("POST", "/admin/reload") => reload(registry),
        // Known paths with the wrong method are 405, not 404 — and this arm
        // must sit above the generic POST arm or `POST /healthz` would fall
        // through to it and report "no route".
        (_, path @ ("/healthz" | "/metrics" | "/admin/reload")) => Reply::error(
            405,
            Endpoint::Other,
            &format!("{path} does not accept {}", request.method),
        ),
        ("POST", path) => match parse_model_path(path) {
            Some((name, op)) => {
                model_request(name, op, request, deadline, registry, metrics, job_tx)
            }
            None => Reply::error(404, Endpoint::Other, &format!("no route for {path}")),
        },
        (_, path) => Reply::error(404, Endpoint::Other, &format!("no route for {path}")),
    }
}

/// Extracts `(name, op)` from `/v1/models/{name}/transform|predict`.
fn parse_model_path(path: &str) -> Option<(&str, Op)> {
    let rest = path.strip_prefix("/v1/models/")?;
    let (name, op) = rest.split_once('/')?;
    if name.is_empty() {
        return None;
    }
    match op {
        "transform" => Some((name, Op::Transform)),
        "predict" => Some((name, Op::Predict)),
        _ => None,
    }
}

fn health(registry: &ModelRegistry) -> Reply {
    let body = serde_json::to_string(&HealthResponse {
        status: "ok".into(),
        models: registry.names(),
        generation: registry.generation(),
    })
    .expect("health response serializes");
    Reply::json(200, body.into_bytes(), Endpoint::Other, 0)
}

fn reload(registry: &ModelRegistry) -> Reply {
    match registry.reload() {
        Ok(report) => {
            let body = serde_json::to_string(&ReloadResponse {
                generation: report.generation,
                models: report.models,
            })
            .expect("reload response serializes");
            Reply::json(200, body.into_bytes(), Endpoint::Other, 0)
        }
        Err(e) => Reply::error(500, Endpoint::Other, &format!("reload failed: {e}")),
    }
}

/// Validates a transform/predict request, enqueues it, and waits for the
/// batcher's reply — no longer than the request's deadline budget allows.
fn model_request(
    name: &str,
    op: Op,
    request: &Request,
    deadline: Option<Instant>,
    registry: &ModelRegistry,
    metrics: &Metrics,
    job_tx: &SyncSender<Job>,
) -> Reply {
    let endpoint = match op {
        Op::Transform => Endpoint::Transform,
        Op::Predict => Endpoint::Predict,
    };
    // Load shedding, part 1: the budget may already be gone — this request
    // sat in the connection queue (or trickled its bytes in) past its own
    // deadline. Shed now, before any parsing or compute is spent on it.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        metrics.observe_shed();
        return Reply::shed(endpoint);
    }
    let body = match request.body_utf8() {
        Ok(body) => body,
        Err(e) => return Reply::error(400, endpoint, &e.to_string()),
    };
    let parsed: RowsRequest = match serde_json::from_str(body) {
        Ok(parsed) => parsed,
        Err(e) => return Reply::error(400, endpoint, &format!("invalid request body: {e}")),
    };
    if parsed.rows.is_empty() {
        return Reply::error(400, endpoint, "request has no rows");
    }
    let width = parsed.rows[0].len();
    if width == 0 || parsed.rows.iter().any(|r| r.len() != width) {
        return Reply::error(400, endpoint, "rows must be non-empty and rectangular");
    }
    let Some(model) = registry.get(name) else {
        return Reply::error(404, endpoint, &format!("no model named `{name}`"));
    };
    if let Some(expected) = model.artifact.n_input_features() {
        if width != expected {
            return Reply::error(
                400,
                endpoint,
                &format!("rows have {width} features but model `{name}` expects {expected}"),
            );
        }
    }
    if op == Op::Predict && !model.artifact.has_predictor() {
        return Reply::error(
            400,
            endpoint,
            &format!("model `{name}` has no predictor stage; use transform"),
        );
    }
    let group = parsed.group.unwrap_or_default();
    if !group.is_empty() && group.len() != parsed.rows.len() {
        return Reply::error(
            400,
            endpoint,
            &format!(
                "group has {} entries but the request has {} rows",
                group.len(),
                parsed.rows.len()
            ),
        );
    }
    // Reject out-of-range group labels here, per request: an LFR stage would
    // reject them mid-batch, failing the whole coalesced micro-batch and
    // punishing innocent co-batched requests with a 500.
    if let Some(&bad) = group.iter().find(|&&g| g > 1) {
        return Reply::error(
            400,
            endpoint,
            &format!("group labels must be 0 or 1, got {bad}"),
        );
    }

    let n_rows = parsed.rows.len();
    let (reply_tx, reply_rx) = sync_channel(1);
    let cancelled = Arc::new(AtomicBool::new(false));
    let job = Job {
        model,
        op,
        rows: parsed.rows,
        group,
        deadline,
        cancelled: Arc::clone(&cancelled),
        reply: reply_tx,
    };
    if job_tx.send(job).is_err() {
        return Reply::error(503, endpoint, "server is shutting down");
    }
    // Wait no longer than the remaining budget (capped by REPLY_TIMEOUT).
    let wait = deadline.map_or(REPLY_TIMEOUT, |d| {
        d.saturating_duration_since(Instant::now())
            .min(REPLY_TIMEOUT)
    });
    match reply_rx.recv_timeout(wait) {
        Ok(Ok(JobOutput::Rows(rows))) => {
            let body = serde_json::to_string(&TransformResponse {
                model: name.to_string(),
                rows,
            })
            .expect("transform response serializes");
            Reply::json(200, body.into_bytes(), endpoint, n_rows)
        }
        Ok(Ok(JobOutput::Scored { scores, decisions })) => {
            let body = serde_json::to_string(&PredictResponse {
                model: name.to_string(),
                scores,
                decisions,
            })
            .expect("predict response serializes");
            Reply::json(200, body.into_bytes(), endpoint, n_rows)
        }
        // Load shedding, part 2: the batcher found the deadline expired at
        // gather time and shed the job before compute.
        Ok(Err(JobError::DeadlineExceeded)) => {
            metrics.observe_shed();
            Reply::shed(endpoint)
        }
        Ok(Err(JobError::Failed(msg))) => Reply::error(500, endpoint, &msg),
        Err(_) => {
            // Whatever happens to this job now, nobody is listening: mark it
            // cancelled so the batcher drops it at gather or scatter instead
            // of computing into (or blocking on) a dead channel.
            cancelled.store(true, Ordering::SeqCst);
            if deadline.is_some_and(|d| Instant::now() >= d) {
                // Compute started (or the queue stalled) and the budget ran
                // out mid-wait: the request is late, not shed-before-work.
                metrics.observe_deadline_exceeded();
                Reply::error(504, endpoint, "deadline exceeded while awaiting inference")
            } else {
                metrics.observe_timed_out();
                Reply::error(500, endpoint, "inference timed out")
            }
        }
    }
}

// ----------------------------------------------------------------- wire types

/// Body of `POST /v1/models/{name}/transform` and `.../predict`.
#[derive(Debug, Deserialize)]
struct RowsRequest {
    /// Feature rows, all of the model's input width.
    rows: Vec<Vec<f64>>,
    /// Optional per-row protected-group membership (0/1); only the LFR
    /// stage reads it. Defaults to all zeros.
    #[serde(default)]
    group: Option<Vec<u8>>,
}

/// Body of a successful transform response.
#[derive(Debug, Serialize)]
struct TransformResponse {
    model: String,
    rows: Vec<Vec<f64>>,
}

/// Body of a successful predict response.
#[derive(Debug, Serialize)]
struct PredictResponse {
    model: String,
    /// `predict_proba` of the terminal predictor.
    scores: Vec<f64>,
    /// `predict` (hard decisions) of the terminal predictor.
    decisions: Vec<f64>,
}

/// Body of every error response.
#[derive(Debug, Serialize)]
struct ErrorResponse {
    error: String,
}

/// Body of `GET /healthz`.
#[derive(Debug, Serialize)]
struct HealthResponse {
    status: String,
    models: Vec<String>,
    generation: u64,
}

/// Body of a successful `POST /admin/reload`.
#[derive(Debug, Serialize)]
struct ReloadResponse {
    generation: u64,
    models: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_paths_parse() {
        assert_eq!(
            parse_model_path("/v1/models/credit/transform"),
            Some(("credit", Op::Transform))
        );
        assert_eq!(
            parse_model_path("/v1/models/m2/predict"),
            Some(("m2", Op::Predict))
        );
        assert_eq!(parse_model_path("/v1/models//transform"), None);
        assert_eq!(parse_model_path("/v1/models/m/evaluate"), None);
        assert_eq!(parse_model_path("/v2/models/m/transform"), None);
        assert_eq!(parse_model_path("/v1/models/m"), None);
    }

    #[test]
    fn rows_request_accepts_optional_group() {
        let r: RowsRequest = serde_json::from_str(r#"{"rows":[[1.0,2.0]]}"#).unwrap();
        assert!(r.group.is_none());
        let r: RowsRequest = serde_json::from_str(r#"{"rows":[[1.0,2.0]],"group":[1]}"#).unwrap();
        assert_eq!(r.group, Some(vec![1]));
        assert!(serde_json::from_str::<RowsRequest>(r#"{"group":[1]}"#).is_err());
    }
}
