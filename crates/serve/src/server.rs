//! The HTTP inference server: accept loop, worker threads, routing.
//!
//! Threading model (all `std`, no async runtime):
//!
//! ```text
//! accept loop ──try_send──▶ bounded connection queue (503 when full)
//!                                   │
//!                     http workers (N threads, shared receiver)
//!                parse request ─▶ validate ─▶ enqueue Job ─▶ wait reply
//!                                   │
//!                          batcher (1 thread)
//!        coalesce pending jobs ─▶ ONE pooled forward pass ─▶ scatter
//!                                   │
//!                   ifair_core::par::WorkerPool (n_threads lanes)
//! ```
//!
//! Artifacts hot-reload via `POST /admin/reload`: the registry swap is
//! atomic and in-flight jobs hold their own `Arc` snapshot, so no request
//! is ever dropped or served a half-updated model.

use crate::batch::{spawn_batcher, Job, JobOutput, Op};
use crate::error::ServeError;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::metrics::{Endpoint, Metrics};
use crate::registry::ModelRegistry;
use ifair::core::par::{resolve_threads, WorkerPool};
use serde::{Deserialize, Serialize};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of [`Server::bind`]. The defaults suit a small container;
/// every knob is exposed as an `ifair serve` flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker-pool lanes for the forward pass; `0` = all hardware threads.
    pub n_threads: usize,
    /// Connection-handling threads (request parsing / response writing).
    pub http_workers: usize,
    /// Bounded queue of accepted-but-unhandled connections; when full, new
    /// connections are shed with `503` instead of queueing unboundedly.
    pub queue_capacity: usize,
    /// Row cap of one micro-batch (coalesced across concurrent requests).
    pub max_batch_rows: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            n_threads: 0,
            http_workers: 4,
            queue_capacity: 128,
            max_batch_rows: 512,
        }
    }
}

/// How long a handler waits for the batcher before giving up with a 500.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Per-connection socket read timeout (slowloris guard).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-connection socket write timeout (guards against clients that stop
/// reading their response).
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound-but-not-yet-running server. [`Server::spawn`] starts the threads.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:8080"`, or port `0` for an ephemeral
    /// port) over an already-loaded registry.
    pub fn bind(
        addr: &str,
        registry: ModelRegistry,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::io(format!("binding {addr}"), e))?;
        Ok(Server {
            listener,
            registry: Arc::new(registry),
            config,
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has a local address")
    }

    /// Starts the accept loop, HTTP workers and batcher; returns a handle
    /// for introspection and shutdown.
    pub fn spawn(self) -> ServerHandle {
        let Server {
            listener,
            registry,
            config,
        } = self;
        let addr = listener.local_addr().expect("bound listener");
        let metrics = Arc::new(Metrics::new());
        let pool = Arc::new(WorkerPool::new(resolve_threads(config.n_threads)));
        let (job_tx, batcher) = spawn_batcher(
            Arc::clone(&pool),
            config.queue_capacity,
            config.max_batch_rows,
        );

        let (conn_tx, conn_rx) = sync_channel::<TcpStream>(config.queue_capacity.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(config.http_workers.max(1));
        for w in 0..config.http_workers.max(1) {
            let conn_rx = Arc::clone(&conn_rx);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            let job_tx = job_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ifair-serve-http-{w}"))
                    .spawn(move || worker_loop(&conn_rx, &registry, &metrics, &job_tx))
                    .expect("spawning an http worker"),
            );
        }
        // Workers hold the only job senders: when they exit, the batcher's
        // queue disconnects and it drains and exits too.
        drop(job_tx);

        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("ifair-serve-accept".into())
                .spawn(move || accept_loop(&listener, &conn_tx, &shutdown, &metrics))
                .expect("spawning the accept loop")
        };

        ServerHandle {
            addr,
            shutdown,
            accept: Some(accept),
            workers,
            batcher: Some(batcher),
            registry,
            metrics,
        }
    }
}

/// A running server: bound address, shared state, and orderly shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the server serves from (shared — reloads through this
    /// handle are visible to the server immediately).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The server's metrics counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Blocks the calling thread until the server stops (for the CLI, that
    /// is effectively forever — processes are stopped by signal).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stop_threads();
    }

    /// Stops accepting, drains queued connections, and joins every thread.
    /// Requests already in flight complete normally.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Accepts connections and feeds the bounded queue, shedding with 503 when
/// the queue is full.
fn accept_loop(
    listener: &TcpListener,
    conn_tx: &SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    metrics: &Metrics,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => match conn_tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    metrics.observe_rejected();
                    let _ = write_response(
                        &mut stream,
                        503,
                        "application/json",
                        b"{\"error\":\"request queue is full\"}",
                    );
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            // Transient accept errors (e.g. the peer vanished between
            // accept and handshake) are not fatal to the server.
            Err(_) => continue,
        }
    }
}

/// One HTTP worker: pop connections off the shared queue until it closes.
fn worker_loop(
    conn_rx: &Mutex<Receiver<TcpStream>>,
    registry: &ModelRegistry,
    metrics: &Metrics,
    job_tx: &SyncSender<Job>,
) {
    loop {
        let stream = conn_rx.lock().expect("connection queue poisoned").recv();
        match stream {
            Ok(stream) => handle_connection(stream, registry, metrics, job_tx),
            Err(_) => break,
        }
    }
}

/// A fully-formed HTTP reply plus the bookkeeping the metrics need.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    endpoint: Endpoint,
    /// Data rows in the response (transform/predict only).
    rows: usize,
}

impl Reply {
    fn json(status: u16, body: Vec<u8>, endpoint: Endpoint, rows: usize) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body,
            endpoint,
            rows,
        }
    }

    fn error(status: u16, endpoint: Endpoint, message: &str) -> Reply {
        let body = serde_json::to_string(&ErrorResponse {
            error: message.to_string(),
        })
        .unwrap_or_else(|_| "{\"error\":\"error\"}".into());
        Reply::json(status, body.into_bytes(), endpoint, 0)
    }
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &ModelRegistry,
    metrics: &Metrics,
    job_tx: &SyncSender<Job>,
) {
    let start = Instant::now();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    // Without a write timeout, a client that stops reading its (possibly
    // multi-megabyte) response would block this worker in write_all forever
    // — a handful of such clients would wedge every worker.
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let request = {
        let mut reader = BufReader::new(&mut stream);
        read_request(&mut reader)
    };
    let reply = match request {
        Ok(request) => dispatch(&request, registry, metrics, job_tx),
        // Nothing arrived (health-checker port probe, client gave up):
        // nothing to answer, nothing to count.
        Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
        Err(HttpError::TooLarge(_)) => Reply::error(413, Endpoint::Other, "request body too large"),
        Err(HttpError::Malformed(msg)) => Reply::error(400, Endpoint::Other, &msg),
    };
    let _ = write_response(&mut stream, reply.status, reply.content_type, &reply.body);
    metrics.observe(reply.endpoint, reply.rows, start.elapsed(), reply.status);
}

/// Routes one parsed request to its handler.
fn dispatch(
    request: &Request,
    registry: &ModelRegistry,
    metrics: &Metrics,
    job_tx: &SyncSender<Job>,
) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => health(registry),
        ("GET", "/metrics") => Reply {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: metrics
                .render(
                    registry.len(),
                    registry.generation(),
                    &registry.precision_labels(),
                )
                .into_bytes(),
            endpoint: Endpoint::Other,
            rows: 0,
        },
        ("POST", "/admin/reload") => reload(registry),
        // Known paths with the wrong method are 405, not 404 — and this arm
        // must sit above the generic POST arm or `POST /healthz` would fall
        // through to it and report "no route".
        (_, path @ ("/healthz" | "/metrics" | "/admin/reload")) => Reply::error(
            405,
            Endpoint::Other,
            &format!("{path} does not accept {}", request.method),
        ),
        ("POST", path) => match parse_model_path(path) {
            Some((name, op)) => model_request(name, op, request, registry, job_tx),
            None => Reply::error(404, Endpoint::Other, &format!("no route for {path}")),
        },
        (_, path) => Reply::error(404, Endpoint::Other, &format!("no route for {path}")),
    }
}

/// Extracts `(name, op)` from `/v1/models/{name}/transform|predict`.
fn parse_model_path(path: &str) -> Option<(&str, Op)> {
    let rest = path.strip_prefix("/v1/models/")?;
    let (name, op) = rest.split_once('/')?;
    if name.is_empty() {
        return None;
    }
    match op {
        "transform" => Some((name, Op::Transform)),
        "predict" => Some((name, Op::Predict)),
        _ => None,
    }
}

fn health(registry: &ModelRegistry) -> Reply {
    let body = serde_json::to_string(&HealthResponse {
        status: "ok".into(),
        models: registry.names(),
        generation: registry.generation(),
    })
    .expect("health response serializes");
    Reply::json(200, body.into_bytes(), Endpoint::Other, 0)
}

fn reload(registry: &ModelRegistry) -> Reply {
    match registry.reload() {
        Ok(report) => {
            let body = serde_json::to_string(&ReloadResponse {
                generation: report.generation,
                models: report.models,
            })
            .expect("reload response serializes");
            Reply::json(200, body.into_bytes(), Endpoint::Other, 0)
        }
        Err(e) => Reply::error(500, Endpoint::Other, &format!("reload failed: {e}")),
    }
}

/// Validates a transform/predict request, enqueues it, and waits for the
/// batcher's reply.
fn model_request(
    name: &str,
    op: Op,
    request: &Request,
    registry: &ModelRegistry,
    job_tx: &SyncSender<Job>,
) -> Reply {
    let endpoint = match op {
        Op::Transform => Endpoint::Transform,
        Op::Predict => Endpoint::Predict,
    };
    let body = match request.body_utf8() {
        Ok(body) => body,
        Err(e) => return Reply::error(400, endpoint, &e.to_string()),
    };
    let parsed: RowsRequest = match serde_json::from_str(body) {
        Ok(parsed) => parsed,
        Err(e) => return Reply::error(400, endpoint, &format!("invalid request body: {e}")),
    };
    if parsed.rows.is_empty() {
        return Reply::error(400, endpoint, "request has no rows");
    }
    let width = parsed.rows[0].len();
    if width == 0 || parsed.rows.iter().any(|r| r.len() != width) {
        return Reply::error(400, endpoint, "rows must be non-empty and rectangular");
    }
    let Some(model) = registry.get(name) else {
        return Reply::error(404, endpoint, &format!("no model named `{name}`"));
    };
    if let Some(expected) = model.artifact.n_input_features() {
        if width != expected {
            return Reply::error(
                400,
                endpoint,
                &format!("rows have {width} features but model `{name}` expects {expected}"),
            );
        }
    }
    if op == Op::Predict && !model.artifact.has_predictor() {
        return Reply::error(
            400,
            endpoint,
            &format!("model `{name}` has no predictor stage; use transform"),
        );
    }
    let group = parsed.group.unwrap_or_default();
    if !group.is_empty() && group.len() != parsed.rows.len() {
        return Reply::error(
            400,
            endpoint,
            &format!(
                "group has {} entries but the request has {} rows",
                group.len(),
                parsed.rows.len()
            ),
        );
    }
    // Reject out-of-range group labels here, per request: an LFR stage would
    // reject them mid-batch, failing the whole coalesced micro-batch and
    // punishing innocent co-batched requests with a 500.
    if let Some(&bad) = group.iter().find(|&&g| g > 1) {
        return Reply::error(
            400,
            endpoint,
            &format!("group labels must be 0 or 1, got {bad}"),
        );
    }

    let n_rows = parsed.rows.len();
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = Job {
        model,
        op,
        rows: parsed.rows,
        group,
        reply: reply_tx,
    };
    if job_tx.send(job).is_err() {
        return Reply::error(503, endpoint, "server is shutting down");
    }
    match reply_rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(Ok(JobOutput::Rows(rows))) => {
            let body = serde_json::to_string(&TransformResponse {
                model: name.to_string(),
                rows,
            })
            .expect("transform response serializes");
            Reply::json(200, body.into_bytes(), endpoint, n_rows)
        }
        Ok(Ok(JobOutput::Scored { scores, decisions })) => {
            let body = serde_json::to_string(&PredictResponse {
                model: name.to_string(),
                scores,
                decisions,
            })
            .expect("predict response serializes");
            Reply::json(200, body.into_bytes(), endpoint, n_rows)
        }
        Ok(Err(msg)) => Reply::error(500, endpoint, &msg),
        Err(_) => Reply::error(500, endpoint, "inference timed out"),
    }
}

// ----------------------------------------------------------------- wire types

/// Body of `POST /v1/models/{name}/transform` and `.../predict`.
#[derive(Debug, Deserialize)]
struct RowsRequest {
    /// Feature rows, all of the model's input width.
    rows: Vec<Vec<f64>>,
    /// Optional per-row protected-group membership (0/1); only the LFR
    /// stage reads it. Defaults to all zeros.
    #[serde(default)]
    group: Option<Vec<u8>>,
}

/// Body of a successful transform response.
#[derive(Debug, Serialize)]
struct TransformResponse {
    model: String,
    rows: Vec<Vec<f64>>,
}

/// Body of a successful predict response.
#[derive(Debug, Serialize)]
struct PredictResponse {
    model: String,
    /// `predict_proba` of the terminal predictor.
    scores: Vec<f64>,
    /// `predict` (hard decisions) of the terminal predictor.
    decisions: Vec<f64>,
}

/// Body of every error response.
#[derive(Debug, Serialize)]
struct ErrorResponse {
    error: String,
}

/// Body of `GET /healthz`.
#[derive(Debug, Serialize)]
struct HealthResponse {
    status: String,
    models: Vec<String>,
    generation: u64,
}

/// Body of a successful `POST /admin/reload`.
#[derive(Debug, Serialize)]
struct ReloadResponse {
    generation: u64,
    models: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_paths_parse() {
        assert_eq!(
            parse_model_path("/v1/models/credit/transform"),
            Some(("credit", Op::Transform))
        );
        assert_eq!(
            parse_model_path("/v1/models/m2/predict"),
            Some(("m2", Op::Predict))
        );
        assert_eq!(parse_model_path("/v1/models//transform"), None);
        assert_eq!(parse_model_path("/v1/models/m/evaluate"), None);
        assert_eq!(parse_model_path("/v2/models/m/transform"), None);
        assert_eq!(parse_model_path("/v1/models/m"), None);
    }

    #[test]
    fn rows_request_accepts_optional_group() {
        let r: RowsRequest = serde_json::from_str(r#"{"rows":[[1.0,2.0]]}"#).unwrap();
        assert!(r.group.is_none());
        let r: RowsRequest = serde_json::from_str(r#"{"rows":[[1.0,2.0]],"group":[1]}"#).unwrap();
        assert_eq!(r.group, Some(vec![1]));
        assert!(serde_json::from_str::<RowsRequest>(r#"{"group":[1]}"#).is_err());
    }
}
