//! Thread supervision: panics respawn, clean exits end.
//!
//! Both long-lived server threads — the event-loop reactor and the
//! batcher — run under `supervise`: the body executes inside
//! `catch_unwind`, a clean return ends the thread (shutdown, queue
//! disconnect), and a panic respawns the body in place after bumping the
//! per-kind restart counter surfaced as `ifair_thread_restarts_total` in
//! `/metrics`. One panicking request can therefore never silently take
//! the server down.
//!
//! The module also owns `recover_lock`: shared-state mutexes (the
//! reactor's connection table, the job queue, the latency ring) are
//! *recovered* when poisoned, never propagated — the protected state
//! keeps its invariants between operations (the reactor only panics at
//! designated consistent points; see `reactor.rs`), so the panic of a
//! previous holder does not make the data unusable, and refusing the
//! lock would turn one failed request into a dead server.

use crate::metrics::Metrics;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Which supervised thread a restart counter belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadKind {
    /// The event-loop reactor (accepting, parsing, dispatch, writing).
    Reactor,
    /// The micro-batching compute thread.
    Batcher,
}

impl ThreadKind {
    /// The `kind` label value in `ifair_thread_restarts_total{kind="..."}`.
    pub fn label(self) -> &'static str {
        match self {
            ThreadKind::Reactor => "reactor",
            ThreadKind::Batcher => "batcher",
        }
    }
}

/// Spawns `body` on a named thread under supervision: a clean return exits,
/// a panic re-runs the body (unless `shutdown` is set) after counting the
/// restart in `metrics`. The body must therefore be re-runnable — all of
/// the server loops are, since their state lives in shared queues.
pub(crate) fn supervise(
    name: String,
    kind: ThreadKind,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    body: impl Fn() + Send + 'static,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || loop {
            match catch_unwind(AssertUnwindSafe(&body)) {
                Ok(()) => break,
                Err(_) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    metrics.observe_thread_restart(kind);
                }
            }
        })
        .expect("spawning a supervised thread")
}

/// Locks `lock`, recovering (rather than propagating) poison: the guarded
/// structures are queues/rings whose invariants hold between operations, so
/// a previous holder's panic does not invalidate them.
pub(crate) fn recover_lock<T: ?Sized>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn clean_return_exits_without_restarts() {
        let metrics = Arc::new(Metrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = supervise(
            "sup-clean".into(),
            ThreadKind::Batcher,
            Arc::clone(&shutdown),
            Arc::clone(&metrics),
            || {},
        );
        handle.join().unwrap();
        assert_eq!(metrics.thread_restarts(ThreadKind::Batcher), 0);
    }

    #[test]
    fn panics_respawn_until_the_body_returns() {
        let metrics = Arc::new(Metrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let runs = Arc::new(AtomicU64::new(0));
        let handle = {
            let runs = Arc::clone(&runs);
            supervise(
                "sup-panicky".into(),
                ThreadKind::Reactor,
                Arc::clone(&shutdown),
                Arc::clone(&metrics),
                move || {
                    // Panic twice, then exit cleanly on the third run.
                    if runs.fetch_add(1, Ordering::SeqCst) < 2 {
                        panic!("injected for the supervisor test");
                    }
                },
            )
        };
        handle.join().unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 3);
        assert_eq!(metrics.thread_restarts(ThreadKind::Reactor), 2);
    }

    #[test]
    fn shutdown_suppresses_the_respawn() {
        let metrics = Arc::new(Metrics::new());
        let shutdown = Arc::new(AtomicBool::new(true));
        let handle = supervise(
            "sup-shutdown".into(),
            ThreadKind::Reactor,
            Arc::clone(&shutdown),
            Arc::clone(&metrics),
            || panic!("injected during shutdown"),
        );
        handle.join().unwrap();
        assert_eq!(metrics.thread_restarts(ThreadKind::Reactor), 0);
    }

    #[test]
    fn recover_lock_survives_a_poisoned_mutex() {
        let lock = Arc::new(Mutex::new(7u64));
        let poisoner = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(lock.lock().is_err(), "the lock really is poisoned");
        assert_eq!(*recover_lock(&lock), 7);
    }
}
