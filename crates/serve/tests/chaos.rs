//! Deterministic chaos tests (`--features fault-injection`).
//!
//! Each test installs a seeded [`FaultPlan`] — scheduled panics, I/O
//! errors, slow reads, torn writes — hammers a live server through real
//! sockets, and asserts the failure contract: every request gets a
//! well-formed HTTP response or a typed client error (never a garbled
//! "success"), supervised threads respawn and are counted in `/metrics`,
//! no thread leaks, and once the plan is cleared the server's answers are
//! **bit-identical** to a healthy run. Same seed, same fault sequence,
//! same outcome — a failing chaos run replays exactly.

#![cfg(feature = "fault-injection")]

use ifair::api::faults::{self, FaultPlan};
use ifair::core::IFairConfig;
use ifair::data::Dataset;
use ifair::linalg::Matrix;
use ifair::Pipeline;
use ifair_serve::client::{self, RetryPolicy};
use ifair_serve::supervisor::ThreadKind;
use ifair_serve::{ModelRegistry, ModelSpec, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// The fault plan is process-global, so chaos tests must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

const BODY: &str = "{\"rows\":[[0.3,0.7,1.0],[0.6,0.4,0.0]]}";
/// The certify-op storm payload: same rows, a fixed radius and threshold.
const CERTIFY_BODY: &str = "{\"rows\":[[0.3,0.7,1.0],[0.6,0.4,0.0]],\"eps\":0.05,\"delta\":0.5}";

fn toy_dataset(m: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            vec![t, 1.0 - t + 0.05 * ((i * 7 % 5) as f64), (i % 2) as f64]
        })
        .collect();
    Dataset::new(
        Matrix::from_rows(rows).unwrap(),
        vec!["a".into(), "b".into(), "gender".into()],
        vec![false, false, true],
        Some(
            (0..m)
                .map(|i| f64::from(i as f64 / m as f64 > 0.5))
                .collect(),
        ),
        (0..m).map(|i| (i % 2) as u8).collect(),
    )
    .unwrap()
}

fn write_artifact(tag: &str, seed: u64) -> PathBuf {
    let ds = toy_dataset(24);
    let pipeline = Pipeline::builder()
        .standard_scaler()
        .ifair(IFairConfig {
            k: 2,
            max_iters: 15,
            n_restarts: 1,
            seed,
            ..Default::default()
        })
        .logistic_regression_default()
        .fit(&ds)
        .unwrap();
    let path = std::env::temp_dir().join(format!(
        "ifair-serve-chaos-{tag}-{}-{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, pipeline.to_json().unwrap()).unwrap();
    path
}

fn boot(path: &std::path::Path) -> ifair_serve::ServerHandle {
    let registry = ModelRegistry::load(vec![ModelSpec {
        name: "m".into(),
        path: path.to_path_buf(),
        precision: ifair_serve::Precision::F64,
    }])
    .unwrap();
    Server::bind(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            n_threads: 1,
            queue_capacity: 32,
            max_batch_rows: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
}

/// Live threads of this process, from `/proc/self/status`.
fn thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// Posts one transform; OK responses must be parseable with a sane status.
fn fire(addr: std::net::SocketAddr) -> Result<(u16, String), std::io::Error> {
    client::request_with(
        addr,
        "POST",
        "/v1/models/m/transform",
        &[],
        Some(BODY),
        Some(Duration::from_secs(10)),
    )
}

/// Posts one certify round (the storm table's newest op).
fn fire_certify(addr: std::net::SocketAddr) -> Result<(u16, String), std::io::Error> {
    client::request_with(
        addr,
        "POST",
        "/v1/models/m/certify",
        &[],
        Some(CERTIFY_BODY),
        Some(Duration::from_secs(10)),
    )
}

/// The healthy-run reference bits for `BODY` against the artifact.
fn healthy_bits(addr: std::net::SocketAddr) -> String {
    let (status, body) = fire(addr).expect("healthy request");
    assert_eq!(status, 200, "{body}");
    body
}

/// The healthy-run reference bits for `CERTIFY_BODY`.
fn healthy_certify_bits(addr: std::net::SocketAddr) -> String {
    let (status, body) = fire_certify(addr).expect("healthy certify request");
    assert_eq!(status, 200, "{body}");
    body
}

/// Waits (bounded) for a restart counter to reach `want`: the supervisor
/// bumps it after unwinding, which can race a sibling thread already
/// serving the next request.
fn await_restarts(handle: &ifair_serve::ServerHandle, kind: ThreadKind, want: u64) -> u64 {
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    loop {
        let got = handle.metrics().thread_restarts(kind);
        if got >= want || std::time::Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The full storm at one seed: panics in every supervised thread, a torn
/// write, a slow read, and an artifact-read error, at seed-drawn call
/// numbers, with rounds alternating transform and certify ops so every
/// fault can land mid-certify too. Every outcome must be well-formed; the
/// server must end the storm answering bit-identically to its healthy self
/// on both ops.
fn chaos_storm(seed: u64) {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let path = write_artifact(&format!("storm{seed}"), 3);
    let handle = boot(&path);
    let addr = handle.addr();
    let reference = healthy_bits(addr);
    let certify_reference = healthy_certify_bits(addr);
    let threads_before = thread_count();

    const ROUNDS: u64 = 40;
    let mut plan = FaultPlan::new(seed);
    // Each site faults once, at a call number drawn from the seed. Call
    // counters only advance when traffic reaches the site — the reactor's
    // panic site ticks once per event-loop wakeup, the batcher's once per
    // batch — so the draws stay within the early rounds to guarantee every
    // fault really fires.
    let reactor_call = plan.draw(4, 12);
    let batcher_call = plan.draw(2, 10);
    let compute_call = plan.draw(12, 20);
    let torn_call = plan.draw(2, 20);
    let read_delay_call = plan.draw(2, 20);
    let plan = plan
        .panic_on("serve.reactor", &[reactor_call])
        .panic_on("serve.batcher", &[batcher_call])
        .panic_on("serve.batch.compute", &[compute_call])
        .torn_write_on("serve.conn.write", &[torn_call])
        .delay_on("serve.conn.read", &[read_delay_call], 30);
    faults::install(plan);

    let mut outcomes = [0u64; 3]; // ok / http error / transport error
    for round in 0..ROUNDS {
        // Alternate ops so the scheduled faults (reactor respawn included)
        // land mid-certify on half the storm.
        let certify_round = round % 2 == 1;
        let expected = if certify_round {
            &certify_reference
        } else {
            &reference
        };
        let shot = if certify_round {
            fire_certify(addr)
        } else {
            fire(addr)
        };
        match shot {
            Ok((200, body)) => {
                assert_eq!(&body, expected, "seed {seed}: garbled 200");
                outcomes[0] += 1;
            }
            Ok((status, body)) => {
                assert!(
                    (400..=599).contains(&status),
                    "seed {seed}: nonsense status {status}: {body}"
                );
                assert!(body.contains("error"), "seed {seed}: untyped error {body}");
                outcomes[1] += 1;
            }
            // Torn write / dropped connection: the client sees a transport
            // error, never a short-but-parseable success.
            Err(_) => outcomes[2] += 1,
        }
    }

    // Every scheduled fault actually fired (the schedule wasn't skipped).
    for site in [
        "serve.reactor",
        "serve.batcher",
        "serve.batch.compute",
        "serve.conn.write",
        "serve.conn.read",
    ] {
        assert_eq!(
            faults::fault_count(site),
            1,
            "seed {seed}: {site} never fired"
        );
    }
    faults::clear();

    // The supervisors counted their respawns...
    assert!(
        await_restarts(&handle, ThreadKind::Reactor, 1) >= 1,
        "seed {seed}: reactor restart missing"
    );
    assert!(
        await_restarts(&handle, ThreadKind::Batcher, 1) >= 1,
        "seed {seed}: batcher restart missing"
    );
    // ...and /metrics exposes them.
    let (status, rendered) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(
        rendered.contains("ifair_thread_restarts_total{kind=\"reactor\"}"),
        "{rendered}"
    );

    // Post-storm: bit-identical to the healthy run, and no thread leaked —
    // every respawn replaced a death, never added a sibling.
    for _ in 0..3 {
        let (status, body) = fire(addr).expect("post-storm request");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, reference, "seed {seed}: post-storm bits diverged");
        let (status, body) = fire_certify(addr).expect("post-storm certify");
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            body, certify_reference,
            "seed {seed}: post-storm certify bits diverged"
        );
    }
    assert_eq!(
        thread_count(),
        threads_before,
        "seed {seed}: thread count drifted"
    );
    assert!(
        outcomes[0] >= ROUNDS / 2,
        "seed {seed}: too few successes: {outcomes:?}"
    );

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn chaos_storm_seed_1() {
    chaos_storm(0xc4a0_5001);
}

#[test]
fn chaos_storm_seed_2() {
    chaos_storm(0xc4a0_5002);
}

#[test]
fn chaos_storm_seed_3() {
    chaos_storm(0xc4a0_5003);
}

/// Satellite check, per thread kind: kill exactly one thread of each kind
/// and verify its supervisor respawned it (counter + continued service).
#[test]
fn each_thread_kind_respawns_after_a_kill() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let path = write_artifact("respawn", 3);

    for (site, kind) in [
        ("serve.reactor", ThreadKind::Reactor),
        ("serve.batcher", ThreadKind::Batcher),
    ] {
        let handle = boot(&path);
        let addr = handle.addr();
        let reference = healthy_bits(addr);
        let threads_before = thread_count();

        faults::install(FaultPlan::new(9).panic_on(site, &[1]));
        // The request that trips the fault may die with the thread — any
        // well-formed error is acceptable; a garbled 200 is not.
        match fire(addr) {
            Ok((200, body)) => assert_eq!(body, reference, "{site}: garbled 200"),
            Ok((status, _)) => assert!((400..=599).contains(&status), "{site}: {status}"),
            Err(_) => {}
        }
        assert_eq!(faults::fault_count(site), 1, "{site} never fired");
        faults::clear();

        // The supervisor replaced the dead thread: service continues,
        // the restart is counted, and the thread census is unchanged.
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            attempt_timeout: Duration::from_secs(5),
            seed: 1,
        };
        let (status, body) = policy
            .request(addr, "POST", "/v1/models/m/transform", &[], Some(BODY))
            .expect("post-kill request");
        assert_eq!(status, 200, "{site}: {body}");
        assert_eq!(body, reference, "{site}: post-kill bits diverged");
        assert_eq!(
            await_restarts(&handle, kind, 1),
            1,
            "{site}: restart not counted"
        );
        assert_eq!(thread_count(), threads_before, "{site}: thread leak");
        handle.shutdown();
    }
    std::fs::remove_file(&path).ok();
}

/// The reactor panics while holding the shared reactor-state mutex (it
/// holds it for the whole loop), poisoning it; the respawned loop must
/// recover the lock — connections, poller, and completion queue intact —
/// and keep serving rather than cascading the panic forever.
#[test]
fn poisoned_reactor_state_is_recovered_not_fatal() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let path = write_artifact("poison", 3);
    let handle = boot(&path);
    let addr = handle.addr();
    let reference = healthy_bits(addr);

    faults::install(FaultPlan::new(5).panic_on("serve.reactor", &[2]));
    // The first post-install wakeup passes (call 1); a later wakeup panics
    // mid-loop with the state mutex held, poisoning it.
    let _ = fire(addr);
    let _ = fire(addr);
    assert_eq!(faults::fault_count("serve.reactor"), 1);
    faults::clear();

    for _ in 0..4 {
        let (status, body) = fire(addr).expect("post-poison request");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, reference, "post-poison bits diverged");
    }
    assert!(await_restarts(&handle, ThreadKind::Reactor, 1) >= 1);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// A panic *inside* batch compute is trapped per-batch: the requester gets
/// a typed 500, the batcher thread survives (no restart counted).
#[test]
fn compute_panic_is_a_500_not_a_batcher_death() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let path = write_artifact("trap", 3);
    let handle = boot(&path);
    let addr = handle.addr();
    let reference = healthy_bits(addr);

    faults::install(FaultPlan::new(6).panic_on("serve.batch.compute", &[1]));
    let (status, body) = fire(addr).expect("a trapped panic still answers");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("internal error"), "{body}");
    faults::clear();

    assert_eq!(handle.metrics().thread_restarts(ThreadKind::Batcher), 0);
    let (status, body) = fire(addr).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, reference);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// An injected I/O error while re-reading artifacts fails the reload with
/// a 500 and leaves the previous generation serving, bit-for-bit.
#[test]
fn artifact_read_fault_fails_reload_cleanly() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let path = write_artifact("reload", 3);
    let handle = boot(&path);
    let addr = handle.addr();
    let reference = healthy_bits(addr);

    faults::install(FaultPlan::new(7).io_error_on("serve.artifact.read", &[1]));
    let (status, body) = client::post(addr, "/admin/reload", "").unwrap();
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("injected fault"), "{body}");
    faults::clear();

    // Generation 1 still serves, untouched; a clean reload then succeeds.
    let (status, body) = fire(addr).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, reference);
    let (status, body) = client::post(addr, "/admin/reload", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":2"), "{body}");
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// A torn response never parses as success, and the retrying client rides
/// it out to the bit-identical answer.
#[test]
fn retry_policy_rides_out_torn_writes() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let path = write_artifact("torn", 3);
    let handle = boot(&path);
    let addr = handle.addr();
    let reference = healthy_bits(addr);

    faults::install(FaultPlan::new(8).torn_write_on("serve.conn.write", &[1]));
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        attempt_timeout: Duration::from_secs(5),
        seed: 2,
    };
    let (status, body) = policy
        .request(addr, "POST", "/v1/models/m/transform", &[], Some(BODY))
        .expect("retry rides out the torn write");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, reference, "post-tear bits diverged");
    assert_eq!(faults::fault_count("serve.conn.write"), 1);
    faults::clear();
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Reads `n` Content-Length-framed responses off one socket, in arrival
/// order, returning `(status, body)` pairs.
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<(u16, String)> {
    let mut buf: Vec<u8> = Vec::new();
    let mut out = Vec::new();
    let mut scratch = [0u8; 4096];
    loop {
        // Frame as many responses as the buffer already holds.
        while let Some(header_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8(buf[..header_end].to_vec()).unwrap();
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .expect("status line")
                .parse()
                .expect("numeric status");
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    if name.eq_ignore_ascii_case("content-length") {
                        value.trim().parse().ok()
                    } else {
                        None
                    }
                })
                .unwrap_or(0);
            let total = header_end + 4 + content_length;
            if buf.len() < total {
                break;
            }
            let body = String::from_utf8(buf[header_end + 4..total].to_vec()).unwrap();
            out.push((status, body));
            buf.drain(..total);
            if out.len() == n {
                return out;
            }
        }
        let got = stream.read(&mut scratch).expect("mid-pipeline read");
        assert!(got > 0, "connection closed before all responses arrived");
        buf.extend_from_slice(&scratch[..got]);
    }
}

/// The ISSUE satellite: a reactor panic mid-pipeline must not lose or
/// cross-wire connections. Two keep-alive connections each pipeline three
/// distinct requests; the panic fires while they are in flight; every
/// connection still receives its own three responses, in order,
/// bit-identical to a healthy run, and the restart is counted.
#[test]
fn reactor_panic_mid_pipeline_keeps_connections_and_order() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let path = write_artifact("pipeline", 3);
    let handle = boot(&path);
    let addr = handle.addr();

    // Three distinct payloads, so an answer delivered to the wrong request
    // (or the wrong connection) cannot be bit-identical by accident.
    let bodies: Vec<String> = (0..3)
        .map(|i| format!("{{\"rows\":[[0.{i}1,0.5,1.0],[0.3,0.{i}2,0.0]]}}"))
        .collect();
    let references: Vec<String> = bodies
        .iter()
        .map(|body| {
            let (status, reply) = client::post(addr, "/v1/models/m/transform", body).unwrap();
            assert_eq!(status, 200, "{reply}");
            reply
        })
        .collect();
    assert_ne!(references[0], references[1], "payloads not distinct");

    // The reactor ticks its panic site once per wakeup; two connects plus
    // their reads guarantee call 2 lands while the pipeline is in flight.
    faults::install(FaultPlan::new(11).panic_on("serve.reactor", &[2]));
    let mut conns: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
    for stream in &mut conns {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut wire = String::new();
        for body in &bodies {
            wire.push_str(&format!(
                "POST /v1/models/m/transform HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ));
        }
        stream.write_all(wire.as_bytes()).unwrap();
    }

    for (c, stream) in conns.iter_mut().enumerate() {
        let got = read_responses(stream, 3);
        for (i, (status, body)) in got.iter().enumerate() {
            assert_eq!(*status, 200, "conn {c} response {i}: {body}");
            assert_eq!(
                body, &references[i],
                "conn {c} response {i} out of order or cross-wired"
            );
        }
    }
    assert_eq!(faults::fault_count("serve.reactor"), 1, "panic never fired");
    faults::clear();
    assert!(await_restarts(&handle, ThreadKind::Reactor, 1) >= 1);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}
