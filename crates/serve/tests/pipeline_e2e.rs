//! Keep-alive and pipelining end-to-end tests: pipelined requests on one
//! connection answer in order and bit-identical to the same requests sent
//! on separate connections; [`Session`] reuses its connection and the
//! server's keep-alive metrics count the reuse; the per-connection request
//! cap and per-model admission cap behave as documented in
//! `docs/SERVING.md`.

use ifair::core::IFairConfig;
use ifair::data::Dataset;
use ifair::linalg::Matrix;
use ifair::Pipeline;
use ifair_serve::client::{self, Session};
use ifair_serve::{ModelRegistry, ModelSpec, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn toy_dataset(m: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            vec![t, 1.0 - t + 0.05 * ((i * 7 % 5) as f64), (i % 2) as f64]
        })
        .collect();
    Dataset::new(
        Matrix::from_rows(rows).unwrap(),
        vec!["a".into(), "b".into(), "gender".into()],
        vec![false, false, true],
        Some(
            (0..m)
                .map(|i| f64::from(i as f64 / m as f64 > 0.5))
                .collect(),
        ),
        (0..m).map(|i| (i % 2) as u8).collect(),
    )
    .unwrap()
}

fn write_artifact(tag: &str) -> PathBuf {
    let ds = toy_dataset(24);
    let pipeline = Pipeline::builder()
        .standard_scaler()
        .ifair(IFairConfig {
            k: 2,
            max_iters: 15,
            n_restarts: 1,
            seed: 3,
            ..Default::default()
        })
        .logistic_regression_default()
        .fit(&ds)
        .unwrap();
    let path = std::env::temp_dir().join(format!(
        "ifair-serve-pipeline-{tag}-{}-{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, pipeline.to_json().unwrap()).unwrap();
    path
}

fn boot(path: &std::path::Path, config: ServerConfig) -> ifair_serve::ServerHandle {
    let registry = ModelRegistry::load(vec![ModelSpec {
        name: "m".into(),
        path: path.to_path_buf(),
        precision: ifair_serve::Precision::F64,
    }])
    .unwrap();
    Server::bind("127.0.0.1:0", registry, config)
        .unwrap()
        .spawn()
}

/// Reads `n` Content-Length-framed responses off one socket, in arrival
/// order, returning `(status, body, keep_alive)` triples.
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<(u16, String, bool)> {
    let mut buf: Vec<u8> = Vec::new();
    let mut out = Vec::new();
    let mut scratch = [0u8; 4096];
    loop {
        while let Some(header_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8(buf[..header_end].to_vec()).unwrap();
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .expect("status line")
                .parse()
                .expect("numeric status");
            let mut content_length = 0usize;
            let mut keep_alive = true;
            for line in head.lines() {
                if let Some((name, value)) = line.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap();
                    } else if name.eq_ignore_ascii_case("connection") {
                        keep_alive = !value.trim().eq_ignore_ascii_case("close");
                    }
                }
            }
            let total = header_end + 4 + content_length;
            if buf.len() < total {
                break;
            }
            let body = String::from_utf8(buf[header_end + 4..total].to_vec()).unwrap();
            out.push((status, body, keep_alive));
            buf.drain(..total);
            if out.len() == n {
                return out;
            }
        }
        let got = stream.read(&mut scratch).expect("pipelined read");
        assert!(got > 0, "connection closed before all responses arrived");
        buf.extend_from_slice(&scratch[..got]);
    }
}

fn pipelined_wire(bodies: &[String]) -> String {
    let mut wire = String::new();
    for body in bodies {
        wire.push_str(&format!(
            "POST /v1/models/m/transform HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    wire
}

/// The ISSUE satellite: P pipelined requests on one keep-alive connection
/// return in order and bit-identical to the same P requests sent on P
/// separate connections.
#[test]
fn pipelined_requests_answer_in_order_and_bit_identical() {
    const P: usize = 5;
    let path = write_artifact("order");
    let handle = boot(&path, ServerConfig::default());
    let addr = handle.addr();

    // Distinct payloads so a cross-wired answer cannot match by accident.
    let bodies: Vec<String> = (0..P)
        .map(|i| format!("{{\"rows\":[[0.{i}1,0.5,1.0],[0.3,0.{i}2,0.0]]}}"))
        .collect();

    // Reference run: P separate connections (the one-shot client helpers
    // send `Connection: close`, so each owns a socket).
    let references: Vec<String> = bodies
        .iter()
        .map(|body| {
            let (status, reply) = client::post(addr, "/v1/models/m/transform", body).unwrap();
            assert_eq!(status, 200, "{reply}");
            reply
        })
        .collect();
    for pair in references.windows(2) {
        assert_ne!(pair[0], pair[1], "payloads not distinct");
    }

    // Pipelined run: all P requests written before any response is read.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(pipelined_wire(&bodies).as_bytes())
        .unwrap();
    let got = read_responses(&mut stream, P);
    for (i, (status, body, keep_alive)) in got.iter().enumerate() {
        assert_eq!(*status, 200, "response {i}: {body}");
        assert_eq!(body, &references[i], "response {i} out of order");
        assert!(*keep_alive, "response {i} closed a keep-alive connection");
    }

    assert!(
        handle.metrics().keepalive_requests_total() >= (P - 1) as u64,
        "keep-alive reuse not counted"
    );
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// `Session` really holds one connection: five requests arrive over a
/// single socket, counted once in `ifair_connections_total` and four
/// times in `ifair_keepalive_requests_total`.
#[test]
fn session_reuses_one_connection_and_the_server_counts_it() {
    let path = write_artifact("session");
    let handle = boot(&path, ServerConfig::default());
    let addr = handle.addr();
    let body = "{\"rows\":[[0.3,0.7,1.0],[0.6,0.4,0.0]]}";

    let mut session = Session::with_timeout(addr, Some(Duration::from_secs(10)));
    let (status, reference) = session.post("/v1/models/m/transform", body).unwrap();
    assert_eq!(status, 200, "{reference}");
    for _ in 0..4 {
        let (status, reply) = session.post("/v1/models/m/transform", body).unwrap();
        assert_eq!(status, 200, "{reply}");
        assert_eq!(reply, reference, "keep-alive reuse changed the bits");
    }
    assert!(session.is_connected(), "server closed a keep-alive session");

    assert_eq!(handle.metrics().connections_total(), 1);
    assert!(handle.metrics().keepalive_requests_total() >= 4);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// With `keep_alive_requests = 2`, the server answers the capped request
/// with `Connection: close` and the session transparently reconnects —
/// so 4 requests ride exactly 2 connections.
#[test]
fn keep_alive_request_cap_closes_politely() {
    let path = write_artifact("cap");
    let handle = boot(
        &path,
        ServerConfig {
            keep_alive_requests: 2,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let body = "{\"rows\":[[0.3,0.7,1.0],[0.6,0.4,0.0]]}";

    let mut session = Session::with_timeout(addr, Some(Duration::from_secs(10)));
    let mut replies = Vec::new();
    for _ in 0..4 {
        let (status, reply) = session.post("/v1/models/m/transform", body).unwrap();
        assert_eq!(status, 200, "{reply}");
        replies.push(reply);
    }
    assert!(replies.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(
        handle.metrics().connections_total(),
        2,
        "cap of 2 should split 4 requests across exactly 2 connections"
    );
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// With `admission_per_model = 1`, a pipeline of three requests admits the
/// first, answers the second with 429 + Retry-After, and closes — the
/// documented throttle contract.
#[test]
fn admission_cap_throttles_pipelined_burst_with_429() {
    let path = write_artifact("admission");
    let handle = boot(
        &path,
        ServerConfig {
            admission_per_model: 1,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let bodies: Vec<String> = (0..3)
        .map(|_| "{\"rows\":[[0.3,0.7,1.0],[0.6,0.4,0.0]]}".to_string())
        .collect();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(pipelined_wire(&bodies).as_bytes())
        .unwrap();

    // All three requests land in one read; the first holds the model's
    // only admission slot (released when its completion is attached, which
    // can't happen before the whole burst is parsed), so the second is
    // throttled and terminal — the connection closes after it.
    let got = read_responses(&mut stream, 2);
    assert_eq!(got[0].0, 200, "{}", got[0].1);
    assert_eq!(got[1].0, 429, "{}", got[1].1);
    assert!(got[1].1.contains("admission"), "{}", got[1].1);
    assert!(!got[1].2, "a throttle must close the connection");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "bytes after the terminal throttle response"
    );

    assert_eq!(handle.metrics().throttled_total(), 1);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}
