//! Robustness end-to-end tests: deadline budgets and load shedding, the
//! graceful-shutdown drain, and the retrying client — all over real
//! sockets, no fault injection required (see `chaos.rs` for that half).

use ifair::core::IFairConfig;
use ifair::data::Dataset;
use ifair::linalg::Matrix;
use ifair::Pipeline;
use ifair_serve::client::{self, RetryPolicy};
use ifair_serve::{ModelRegistry, ModelSpec, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn toy_dataset(m: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            vec![t, 1.0 - t + 0.05 * ((i * 7 % 5) as f64), (i % 2) as f64]
        })
        .collect();
    Dataset::new(
        Matrix::from_rows(rows).unwrap(),
        vec!["a".into(), "b".into(), "gender".into()],
        vec![false, false, true],
        Some(
            (0..m)
                .map(|i| f64::from(i as f64 / m as f64 > 0.5))
                .collect(),
        ),
        (0..m).map(|i| (i % 2) as u8).collect(),
    )
    .unwrap()
}

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ifair-serve-robust-{tag}-{}-{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn write_artifact(tag: &str, seed: u64) -> PathBuf {
    let ds = toy_dataset(24);
    let pipeline = Pipeline::builder()
        .standard_scaler()
        .ifair(IFairConfig {
            k: 2,
            max_iters: 15,
            n_restarts: 1,
            seed,
            ..Default::default()
        })
        .logistic_regression_default()
        .fit(&ds)
        .unwrap();
    let path = temp_file(tag);
    std::fs::write(&path, pipeline.to_json().unwrap()).unwrap();
    path
}

fn boot(path: &std::path::Path, config: ServerConfig) -> ifair_serve::ServerHandle {
    let registry = ModelRegistry::load(vec![ModelSpec {
        name: "m".into(),
        path: path.to_path_buf(),
        precision: ifair_serve::Precision::F64,
    }])
    .unwrap();
    Server::bind("127.0.0.1:0", registry, config)
        .unwrap()
        .spawn()
}

const BODY: &str = "{\"rows\":[[0.3,0.7,1.0],[0.6,0.4,0.0]]}";

#[test]
fn zero_budget_requests_are_shed_with_retry_after() {
    let path = write_artifact("shed", 3);
    let handle = boot(&path, ServerConfig::default());
    let addr = handle.addr();

    // A 0ms budget is always exhausted by handler time: deterministic shed.
    // Raw socket so the Retry-After header is visible (the test client
    // keeps only status + body).
    let mut stream = TcpStream::connect(addr).unwrap();
    let head = format!(
        "POST /v1/models/m/transform HTTP/1.1\r\nHost: x\r\nX-Ifair-Deadline-Ms: 0\r\nContent-Length: {}\r\n\r\n{BODY}",
        BODY.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 503 "), "{raw}");
    assert!(raw.contains("Retry-After: 1\r\n"), "{raw}");
    assert!(raw.contains("deadline budget exhausted"), "{raw}");
    assert_eq!(handle.metrics().shed_total(), 1);

    // A roomy budget sails through.
    let (status, body) = client::request_with(
        addr,
        "POST",
        "/v1/models/m/transform",
        &[("X-Ifair-Deadline-Ms", "60000".to_string())],
        Some(BODY),
        Some(Duration::from_secs(10)),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");

    // Garbage in the header is a 400, not a guess.
    let (status, body) = client::request_with(
        addr,
        "POST",
        "/v1/models/m/transform",
        &[("X-Ifair-Deadline-Ms", "soon".to_string())],
        Some(BODY),
        None,
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("X-Ifair-Deadline-Ms"), "{body}");

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Under saturating load with tiny deadlines, transforms may be shed — but
/// `/healthz` and `/metrics` always answer 200, so the operator can watch a
/// saturated server degrade instead of losing sight of it.
#[test]
fn health_and_metrics_answer_while_transforms_shed() {
    let path = write_artifact("saturate", 5);
    // One worker, but a queue deep enough that connections are never shed
    // at accept (which is path-blind): the deadline machinery must do the
    // shedding, after the path is known, so health traffic is exempt.
    let handle = boot(
        &path,
        ServerConfig {
            n_threads: 1,
            queue_capacity: 64,
            max_batch_rows: 64,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..6u64)
        .map(|h| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut shed = 0u64;
                // Even hammers carry an unmeetable 0ms budget (guaranteed
                // shed), odd ones 5ms — beatable only when the queue is
                // short, so saturation decides their fate.
                let budget = if h % 2 == 0 { "0" } else { "5" };
                while !stop.load(Ordering::Relaxed) {
                    match client::request_with(
                        addr,
                        "POST",
                        "/v1/models/m/transform",
                        &[("X-Ifair-Deadline-Ms", budget.to_string())],
                        Some(BODY),
                        Some(Duration::from_secs(10)),
                    ) {
                        Ok((200, _)) => {}
                        Ok((503, body)) => {
                            // Queue-full and deadline sheds both speak 503.
                            assert!(
                                body.contains("deadline budget") || body.contains("queue is full"),
                                "{body}"
                            );
                            shed += 1;
                        }
                        Ok((504, _)) => {} // budget died mid-wait
                        Ok((status, body)) => panic!("unexpected {status}: {body}"),
                        // Connection-level shed (refused while the queue
                        // churns) — acceptable under saturation.
                        Err(_) => {}
                    }
                }
                shed
            })
        })
        .collect();

    // While the hammers run, the observability plane must stay green.
    let mut health_checks = 0u32;
    let deadline = std::time::Instant::now() + Duration::from_millis(800);
    while std::time::Instant::now() < deadline {
        if let Ok((status, body)) = client::get(addr, "/healthz") {
            assert_eq!(status, 200, "{body}");
            health_checks += 1;
        }
        if let Ok((status, body)) = client::get(addr, "/metrics") {
            assert_eq!(status, 200, "{body}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    let total_shed: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();

    assert!(health_checks > 10, "health plane starved: {health_checks}");
    assert!(total_shed > 0, "saturation never shed a single request");
    let rendered = handle.metrics().render(1, 1, &[("m".to_string(), "f64")]);
    assert!(rendered.contains("ifair_requests_shed_total"), "{rendered}");

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Graceful shutdown drains: a request already accepted completes with a
/// full 200 even though shutdown started while it was in flight.
#[test]
fn shutdown_drains_in_flight_requests() {
    let path = write_artifact("drain", 7);
    let handle = boot(&path, ServerConfig::default());
    let addr = handle.addr();

    let in_flight: Vec<_> = (0..6)
        .map(|_| std::thread::spawn(move || client::post(addr, "/v1/models/m/transform", BODY)))
        .collect();
    // Let the requests reach the server, then shut down underneath them.
    std::thread::sleep(Duration::from_millis(30));
    handle.shutdown();

    for flight in in_flight {
        let (status, body) = flight
            .join()
            .unwrap()
            .expect("in-flight request dropped during drain");
        assert_eq!(status, 200, "in-flight request failed during drain: {body}");
    }

    // The port is actually closed afterwards.
    assert!(client::get(addr, "/healthz").is_err());
    std::fs::remove_file(&path).ok();
}

/// The retrying client rides out a shed: a 0-budget request is always shed,
/// but the retry's fresh attempts carry a sane budget and succeed.
#[test]
fn retry_policy_recovers_from_transient_rejection() {
    let path = write_artifact("retry", 9);
    let handle = boot(&path, ServerConfig::default());
    let addr = handle.addr();

    // Single-shot: always shed.
    let (status, _) = client::request_with(
        addr,
        "POST",
        "/v1/models/m/transform",
        &[("X-Ifair-Deadline-Ms", "0".to_string())],
        Some(BODY),
        None,
    )
    .unwrap();
    assert_eq!(status, 503);

    // Under the policy, a request with a real budget succeeds first try and
    // the retry machinery does not interfere with a healthy server.
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        attempt_timeout: Duration::from_secs(10),
        seed: 42,
    };
    let (status, body) = policy
        .request(
            addr,
            "POST",
            "/v1/models/m/transform",
            &[("X-Ifair-Deadline-Ms", "60000".to_string())],
            Some(BODY),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}
