//! End-to-end tests: fit → save → boot on an ephemeral port → round-trip
//! over real sockets, proving wire responses are **bit-identical** to
//! in-process calls, and that hot reload under concurrent fire loses
//! nothing.

use ifair::core::{IFair, IFairConfig};
use ifair::data::Dataset;
use ifair::linalg::Matrix;
use ifair::Pipeline;
use ifair_serve::artifact::request_dataset;
use ifair_serve::{client, ModelRegistry, ModelSpec, Server, ServerConfig};
use serde::Deserialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Debug, Deserialize)]
struct TransformResponse {
    model: String,
    rows: Vec<Vec<f64>>,
}

#[derive(Debug, Deserialize)]
struct PredictResponse {
    scores: Vec<f64>,
    decisions: Vec<f64>,
}

#[derive(Debug, Deserialize)]
struct CertifyResponse {
    model: String,
    eps: f64,
    deltas: Vec<f64>,
    methods: Vec<String>,
    certified: Option<Vec<bool>>,
}

fn toy_dataset(m: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            vec![t, 1.0 - t + 0.05 * ((i * 7 % 5) as f64), (i % 2) as f64]
        })
        .collect();
    Dataset::new(
        Matrix::from_rows(rows).unwrap(),
        vec!["a".into(), "b".into(), "gender".into()],
        vec![false, false, true],
        Some(
            (0..m)
                .map(|i| f64::from(i as f64 / m as f64 > 0.5))
                .collect(),
        ),
        (0..m).map(|i| (i % 2) as u8).collect(),
    )
    .unwrap()
}

fn quick_pipeline(ds: &Dataset, seed: u64) -> Pipeline {
    Pipeline::builder()
        .standard_scaler()
        .ifair(IFairConfig {
            k: 2,
            max_iters: 15,
            n_restarts: 1,
            seed,
            ..Default::default()
        })
        .logistic_regression_default()
        .fit(ds)
        .unwrap()
}

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ifair-serve-e2e-{tag}-{}-{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn boot(path: &std::path::Path, name: &str) -> ifair_serve::ServerHandle {
    boot_prec(path, name, ifair_serve::Precision::F64)
}

fn boot_prec(
    path: &std::path::Path,
    name: &str,
    precision: ifair_serve::Precision,
) -> ifair_serve::ServerHandle {
    let registry = ModelRegistry::load(vec![ModelSpec {
        name: name.into(),
        path: path.to_path_buf(),
        precision,
    }])
    .unwrap();
    Server::bind("127.0.0.1:0", registry, ServerConfig::default())
        .unwrap()
        .spawn()
}

/// JSON-encodes rows the way a client would.
fn rows_body(x: &Matrix) -> String {
    let rows: Vec<Vec<f64>> = (0..x.rows()).map(|i| x.row(i).to_vec()).collect();
    serde_json::to_string(&rows)
        .map(|r| format!("{{\"rows\":{r}}}"))
        .unwrap()
}

fn bits(rows: &[Vec<f64>]) -> Vec<Vec<u64>> {
    rows.iter()
        .map(|r| r.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn server_responses_are_bit_identical_to_in_process_calls() {
    let ds = toy_dataset(24);
    let pipeline = quick_pipeline(&ds, 7);
    let path = temp_file("bitident");
    std::fs::write(&path, pipeline.to_json().unwrap()).unwrap();
    let handle = boot(&path, "toy");
    let addr = handle.addr();

    // The in-process reference, computed over the exact dataset view the
    // server fabricates from the request rows.
    let view = request_dataset(ds.x.clone(), vec![]).unwrap();
    let expect_repr = pipeline.transform(&view).unwrap();
    let expect_scores = pipeline.predict_proba(&view).unwrap();
    let expect_decisions = pipeline.predict(&view).unwrap();

    // Transform round trip.
    let (status, body) = client::post(addr, "/v1/models/toy/transform", &rows_body(&ds.x)).unwrap();
    assert_eq!(status, 200, "{body}");
    let parsed: TransformResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed.model, "toy");
    let expect_rows: Vec<Vec<f64>> = (0..expect_repr.rows())
        .map(|i| expect_repr.row(i).to_vec())
        .collect();
    assert_eq!(
        bits(&parsed.rows),
        bits(&expect_rows),
        "wire transform differs from in-process transform"
    );

    // Predict round trip: scores == predict_proba, decisions == predict.
    let (status, body) = client::post(addr, "/v1/models/toy/predict", &rows_body(&ds.x)).unwrap();
    assert_eq!(status, 200, "{body}");
    let parsed: PredictResponse = serde_json::from_str(&body).unwrap();
    let score_bits: Vec<u64> = parsed.scores.iter().map(|v| v.to_bits()).collect();
    let expect_score_bits: Vec<u64> = expect_scores.iter().map(|v| v.to_bits()).collect();
    assert_eq!(score_bits, expect_score_bits);
    assert_eq!(parsed.decisions, expect_decisions);

    // Health and metrics reflect the traffic.
    let (status, body) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"toy\""), "{body}");
    let (status, metrics) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("ifair_requests_total"), "{metrics}");
    assert!(metrics.contains("ifair_rows_served_total 48"), "{metrics}");
    assert!(metrics.contains("quantile=\"0.99\""), "{metrics}");
    assert!(
        metrics.contains("ifair_model_precision{model=\"toy\",precision=\"f64\"} 1"),
        "{metrics}"
    );

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// A model served with `@f32` answers within tolerance of the f64 pipeline
/// and advertises its precision on `/metrics`.
#[test]
fn f32_served_model_tracks_f64_and_reports_its_precision() {
    let ds = toy_dataset(24);
    let pipeline = quick_pipeline(&ds, 11);
    let path = temp_file("f32");
    std::fs::write(&path, pipeline.to_json().unwrap()).unwrap();
    let handle = boot_prec(&path, "half", ifair_serve::Precision::F32);
    let addr = handle.addr();

    let view = request_dataset(ds.x.clone(), vec![]).unwrap();
    let expect_repr = pipeline.transform(&view).unwrap();
    let expect_scores = pipeline.predict_proba(&view).unwrap();

    let (status, body) =
        client::post(addr, "/v1/models/half/transform", &rows_body(&ds.x)).unwrap();
    assert_eq!(status, 200, "{body}");
    let parsed: TransformResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed.model, "half");
    assert_eq!(parsed.rows.len(), expect_repr.rows());
    for (i, row) in parsed.rows.iter().enumerate() {
        for (a, b) in row.iter().zip(expect_repr.row(i)) {
            assert!((a - b).abs() < 1e-3, "row {i}: f32 drift {a} vs {b}");
        }
    }

    let (status, body) = client::post(addr, "/v1/models/half/predict", &rows_body(&ds.x)).unwrap();
    assert_eq!(status, 200, "{body}");
    let parsed: PredictResponse = serde_json::from_str(&body).unwrap();
    for (a, b) in parsed.scores.iter().zip(&expect_scores) {
        assert!((a - b).abs() < 1e-3, "f32 score drift {a} vs {b}");
    }

    let (status, metrics) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("ifair_model_precision{model=\"half\",precision=\"f32\"} 1"),
        "{metrics}"
    );

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_requests_get_typed_statuses_not_hangs() {
    let ds = toy_dataset(16);
    let path = temp_file("badreq");
    // A bare iFair model artifact: transform works, predict must 400.
    let model = IFair::fit(
        &ds.x,
        &ds.protected,
        &IFairConfig {
            k: 2,
            max_iters: 10,
            n_restarts: 1,
            ..Default::default()
        },
    )
    .unwrap();
    std::fs::write(&path, model.to_json().unwrap()).unwrap();
    let handle = boot(&path, "bare");
    let addr = handle.addr();

    let (status, _) = client::post(addr, "/v1/models/bare/transform", &rows_body(&ds.x)).unwrap();
    assert_eq!(status, 200);
    let (status, body) = client::post(addr, "/v1/models/bare/predict", &rows_body(&ds.x)).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("no predictor"), "{body}");
    let (status, _) = client::post(addr, "/v1/models/ghost/transform", &rows_body(&ds.x)).unwrap();
    assert_eq!(status, 404);
    let (status, body) =
        client::post(addr, "/v1/models/bare/transform", "{\"rows\":[[1.0]]}").unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("expects 3"), "{body}");
    let (status, _) = client::post(addr, "/v1/models/bare/transform", "{\"rows\":[]}").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client::post(addr, "/v1/models/bare/transform", "not json").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client::get(addr, "/nope").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::request(addr, "DELETE", "/healthz", None).unwrap();
    assert_eq!(status, 405);
    // Known path, wrong method: 405, not "no route".
    let (status, body) = client::post(addr, "/healthz", "").unwrap();
    assert_eq!(status, 405, "{body}");
    // Out-of-range group labels are rejected per request (a 2 reaching an
    // LFR stage would otherwise fail the whole coalesced batch).
    let (status, body) = client::post(
        addr,
        "/v1/models/bare/transform",
        "{\"rows\":[[0.1,0.2,1.0]],\"group\":[2]}",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("0 or 1"), "{body}");

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// N client threads hammer transform while the artifact file is swapped and
/// `/admin/reload` fires: every response must be 200 and bit-identical to
/// either the old or the new model's output; after the reload, responses
/// must match the new model exactly.
#[test]
fn hot_reload_under_concurrent_load_loses_no_requests() {
    let ds = toy_dataset(24);
    let v1 = quick_pipeline(&ds, 1);
    let v2 = quick_pipeline(&ds, 2);
    let view = request_dataset(ds.x.clone(), vec![]).unwrap();
    let expect_v1 = bits(
        &v1.transform(&view)
            .unwrap()
            .row_iter()
            .map(<[f64]>::to_vec)
            .collect::<Vec<_>>(),
    );
    let expect_v2 = bits(
        &v2.transform(&view)
            .unwrap()
            .row_iter()
            .map(<[f64]>::to_vec)
            .collect::<Vec<_>>(),
    );
    assert_ne!(expect_v1, expect_v2, "seeds must produce distinct models");

    let path = temp_file("reload");
    std::fs::write(&path, v1.to_json().unwrap()).unwrap();
    let handle = boot(&path, "m");
    let addr = handle.addr();
    let body = rows_body(&ds.x);

    let stop = Arc::new(AtomicBool::new(false));
    let n_clients = 4;
    let clients: Vec<_> = (0..n_clients)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let body = body.clone();
            let expect_v1 = expect_v1.clone();
            let expect_v2 = expect_v2.clone();
            std::thread::spawn(move || -> (usize, usize) {
                let (mut n_ok, mut n_v2) = (0usize, 0usize);
                while !stop.load(Ordering::Relaxed) {
                    let (status, text) =
                        client::post(addr, "/v1/models/m/transform", &body).unwrap();
                    assert_eq!(status, 200, "dropped/failed request: {text}");
                    let parsed: TransformResponse = serde_json::from_str(&text).unwrap();
                    let got = bits(&parsed.rows);
                    assert!(
                        got == expect_v1 || got == expect_v2,
                        "garbled response: matches neither model generation"
                    );
                    n_ok += 1;
                    if got == expect_v2 {
                        n_v2 += 1;
                    }
                }
                (n_ok, n_v2)
            })
        })
        .collect();

    // Let traffic flow, then swap the artifact mid-fire.
    std::thread::sleep(std::time::Duration::from_millis(150));
    std::fs::write(&path, v2.to_json().unwrap()).unwrap();
    let (status, text) = client::post(addr, "/admin/reload", "").unwrap();
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"generation\":2"), "{text}");
    std::thread::sleep(std::time::Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let mut total = 0usize;
    let mut total_v2 = 0usize;
    for c in clients {
        let (n_ok, n_v2) = c.join().expect("client thread must not panic");
        total += n_ok;
        total_v2 += n_v2;
    }
    assert!(total > 0, "clients made no requests");
    assert!(
        total_v2 > 0,
        "no request ever observed the reloaded model ({total} total)"
    );

    // Post-reload, the new model answers exclusively.
    let (status, text) = client::post(addr, "/v1/models/m/transform", &body).unwrap();
    assert_eq!(status, 200);
    let parsed: TransformResponse = serde_json::from_str(&text).unwrap();
    assert_eq!(bits(&parsed.rows), expect_v2);

    // And a failed reload (broken file) keeps serving the current model.
    std::fs::write(&path, "{broken json").unwrap();
    let (status, text) = client::post(addr, "/admin/reload", "").unwrap();
    assert_eq!(status, 500, "{text}");
    let (status, text) = client::post(addr, "/v1/models/m/transform", &body).unwrap();
    assert_eq!(status, 200);
    let parsed: TransformResponse = serde_json::from_str(&text).unwrap();
    assert_eq!(bits(&parsed.rows), expect_v2);

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// `/certify` answers bit-identically to in-process `Pipeline::certify_rows`,
/// thresholds rows when a `delta` rides along, and publishes the certified
/// fraction gauge; malformed radii and unknown models get typed statuses.
#[test]
fn certify_endpoint_matches_in_process_and_rejects_bad_input() {
    let ds = toy_dataset(24);
    let pipeline = quick_pipeline(&ds, 13);
    let path = temp_file("certify");
    std::fs::write(&path, pipeline.to_json().unwrap()).unwrap();
    let handle = boot(&path, "toy");
    let addr = handle.addr();

    let eps = 0.05;
    let expect: Vec<u64> = pipeline
        .certify_rows(&ds.x, eps, None, ifair_serve::Precision::F64)
        .unwrap()
        .iter()
        .map(|c| c.delta.to_bits())
        .collect();

    // Unthresholded round trip: deltas bit-identical, no verdicts.
    let body = format!(
        "{{\"rows\":{},\"eps\":{eps}}}",
        serde_json::to_string(
            &(0..ds.x.rows())
                .map(|i| ds.x.row(i).to_vec())
                .collect::<Vec<_>>()
        )
        .unwrap()
    );
    let (status, text) = client::post(addr, "/v1/models/toy/certify", &body).unwrap();
    assert_eq!(status, 200, "{text}");
    let parsed: CertifyResponse = serde_json::from_str(&text).unwrap();
    assert_eq!(parsed.model, "toy");
    assert_eq!(parsed.eps, eps);
    let got: Vec<u64> = parsed.deltas.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, expect, "wire deltas differ from in-process certify");
    assert_eq!(parsed.methods.len(), parsed.deltas.len());
    assert!(parsed
        .methods
        .iter()
        .all(|m| m == "IntervalBound" || m == "GlobalDiameter"));
    assert!(parsed.certified.is_none(), "no threshold, no verdicts");

    // Thresholded: per-row verdicts match `delta <= threshold`, and the
    // certified-fraction gauge appears on /metrics for this (model, eps).
    let threshold = {
        let mut sorted: Vec<f64> = parsed.deltas.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2] // median: some rows pass, typically not all
    };
    let body = format!(
        "{{\"rows\":{},\"eps\":{eps},\"delta\":{threshold}}}",
        serde_json::to_string(
            &(0..ds.x.rows())
                .map(|i| ds.x.row(i).to_vec())
                .collect::<Vec<_>>()
        )
        .unwrap()
    );
    let (status, text) = client::post(addr, "/v1/models/toy/certify", &body).unwrap();
    assert_eq!(status, 200, "{text}");
    let parsed: CertifyResponse = serde_json::from_str(&text).unwrap();
    let flags = parsed.certified.expect("threshold present, verdicts due");
    assert_eq!(flags.len(), parsed.deltas.len());
    for (i, (&d, &ok)) in parsed.deltas.iter().zip(&flags).enumerate() {
        assert_eq!(ok, d <= threshold, "row {i} verdict contradicts its delta");
    }
    assert!(
        flags.iter().any(|&b| b),
        "median threshold certifies no rows?"
    );
    let (status, metrics) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("ifair_certified_fraction{model=\"toy\",eps=\"0.05\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("ifair_certify_requests_total 2"),
        "{metrics}"
    );

    // Typed rejections: malformed radius, malformed threshold, missing
    // radius, unknown model.
    let rows = "[[0.1,0.2,1.0]]";
    let (status, text) = client::post(
        addr,
        "/v1/models/toy/certify",
        &format!("{{\"rows\":{rows},\"eps\":-0.5}}"),
    )
    .unwrap();
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("invalid certification radius"), "{text}");
    let (status, text) = client::post(
        addr,
        "/v1/models/toy/certify",
        &format!("{{\"rows\":{rows},\"eps\":0.1,\"delta\":-1.0}}"),
    )
    .unwrap();
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("delta"), "{text}");
    let (status, text) = client::post(
        addr,
        "/v1/models/toy/certify",
        &format!("{{\"rows\":{rows}}}"),
    )
    .unwrap();
    assert_eq!(status, 400, "{text}");
    let (status, _) = client::post(
        addr,
        "/v1/models/ghost/certify",
        &format!("{{\"rows\":{rows},\"eps\":0.1}}"),
    )
    .unwrap();
    assert_eq!(status, 404);

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Regression (ISSUE 10 satellite): certifying an artifact whose pipeline
/// is a bare predictor — no representation space — must be a typed error
/// end to end, never a panic: in-process `Pipeline::certify_rows` returns
/// `CertifyError::Unsupported`, and the server answers 400 before dispatch.
#[test]
fn bare_predictor_artifact_certify_is_a_typed_400_not_a_panic() {
    let ds = toy_dataset(16);
    let bare = Pipeline::builder()
        .logistic_regression_default()
        .fit(&ds)
        .unwrap();

    // In-process: typed error, not a panic.
    let err = bare
        .certify_rows(&ds.x, 0.1, None, ifair_serve::Precision::F64)
        .unwrap_err();
    assert!(
        err.to_string().contains("certification unsupported"),
        "{err}"
    );

    let path = temp_file("barecert");
    std::fs::write(&path, bare.to_json().unwrap()).unwrap();
    let handle = boot(&path, "barepred");
    let addr = handle.addr();
    let (status, text) = client::post(
        addr,
        "/v1/models/barepred/certify",
        "{\"rows\":[[0.1,0.2,1.0]],\"eps\":0.1}",
    )
    .unwrap();
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("does not support certification"), "{text}");
    // The same artifact still predicts fine — only certification is out.
    let (status, _) = client::post(
        addr,
        "/v1/models/barepred/predict",
        "{\"rows\":[[0.1,0.2,1.0]]}",
    )
    .unwrap();
    assert_eq!(status, 200);

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Many concurrent clients with distinct payloads: micro-batching must
/// scatter every reply to its own requester (no cross-wiring).
#[test]
fn concurrent_distinct_payloads_never_cross_wires() {
    let ds = toy_dataset(24);
    let pipeline = quick_pipeline(&ds, 9);
    let path = temp_file("scatter");
    std::fs::write(&path, pipeline.to_json().unwrap()).unwrap();
    let handle = boot(&path, "m");
    let addr = handle.addr();

    let clients: Vec<_> = (0..8u32)
        .map(|c| {
            let pipeline = pipeline.clone();
            std::thread::spawn(move || {
                for round in 0..10u32 {
                    let v = f64::from(c) * 0.1 + f64::from(round) * 0.01;
                    let rows = vec![vec![v, 1.0 - v, 0.0], vec![v / 2.0, v, 1.0]];
                    let expect = {
                        let x = Matrix::from_rows(rows.clone()).unwrap();
                        let view = request_dataset(x, vec![]).unwrap();
                        let out = pipeline.transform(&view).unwrap();
                        bits(&out.row_iter().map(<[f64]>::to_vec).collect::<Vec<_>>())
                    };
                    let body = format!("{{\"rows\":{}}}", serde_json::to_string(&rows).unwrap());
                    let (status, text) =
                        client::post(addr, "/v1/models/m/transform", &body).unwrap();
                    assert_eq!(status, 200, "{text}");
                    let parsed: TransformResponse = serde_json::from_str(&text).unwrap();
                    assert_eq!(bits(&parsed.rows), expect, "client {c} round {round}");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread must not panic");
    }
    assert!(handle.metrics().rows_served() >= 8 * 10 * 2);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}
