//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of `rand`'s surface it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded through
//! SplitMix64), the [`Rng`] extension methods `gen`, `gen_range` and
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. The value streams are *not*
//! bit-compatible with upstream `rand` — every consumer in this workspace
//! seeds its own generator and asserts on self-consistent statistics, never
//! on upstream streams.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words. Object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructors. Only the `u64` convenience seeding is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias < 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u8);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (for `f64`: uniform in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range` (half-open).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The generator's raw internal state — four xoshiro256++ words.
        ///
        /// Together with [`StdRng::from_state`] this makes the stream
        /// *checkpointable*: capture the state at any point and a generator
        /// rebuilt from it continues with bit-identical draws. Exists for
        /// crash-safe training checkpoints, which must persist their sampler
        /// mid-stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`] output, continuing
        /// the captured stream exactly.
        ///
        /// The all-zero state is a fixed point of xoshiro256++ (the stream
        /// would be constant zero); it cannot be produced by
        /// [`SeedableRng::seed_from_u64`] and is rejected here.
        ///
        /// # Panics
        /// Panics if `s` is all zeros.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            assert!(
                s.iter().any(|&w| w != 0),
                "the all-zero state is not a valid xoshiro256++ state"
            );
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = i as u64 + 1;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xa: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        // Advance mid-stream, snapshot, and rebuild: the clone must produce
        // the exact same suffix.
        for _ in 0..5 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        let xa: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
