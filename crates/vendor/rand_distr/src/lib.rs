//! Offline, API-compatible subset of the `rand_distr` crate.
//!
//! Provides the [`Distribution`] trait and a Box–Muller [`Normal`] — the only
//! pieces the workspace uses. See the vendored `rand` shim for why this
//! exists.

#![forbid(unsafe_code)]

use rand::{RngCore, Standard};

/// Types that produce samples of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Builds `N(mean, std_dev²)`; fails on negative or non-finite `std_dev`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one uniform pair per sample keeps the sampler stateless
        // (reproducibility matters more than the discarded second deviate).
        let u1: f64 = loop {
            let u = <f64 as Standard>::draw(rng);
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = <f64 as Standard>::draw(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_of_standard_normal() {
        let normal = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn location_and_scale() {
        let normal = Normal::new(5.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let mean = (0..n).map(|_| normal.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
    }
}
