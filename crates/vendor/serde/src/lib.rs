//! Offline serialization facade used in place of `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal self-serialization framework under serde's names: the derivable
//! [`Serialize`] / [`Deserialize`] traits convert values to and from an
//! in-memory JSON [`Value`] tree, and the sibling `serde_json` shim renders
//! that tree to text. The derive macros (re-exported from `serde_derive`)
//! cover the shapes this workspace uses: named-field structs, tuple structs,
//! and enums with unit / newtype / tuple / struct variants, encoded exactly
//! like serde's default externally-tagged representation.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Number, Value};

/// Error raised when a [`Value`] cannot be decoded into the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree. Derivable.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree. Derivable.
pub trait Deserialize: Sized {
    /// Decodes a value of `Self` from `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::Int(*self as i128)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_int()?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::Number(Number::Float(*self as f64))
                } else {
                    // serde_json refuses non-finite floats; encode as null so
                    // persisted models with sentinel values still round-trip.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Null => Ok(<$t>::NAN),
                    _ => Ok(v.as_f64()? as $t),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array()?;
                const LEN: usize = 0 $(+ { let _ = $i; 1 })+;
                if a.len() != LEN {
                    return Err(Error::msg(format!(
                        "expected array of length {LEN}, got {}", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn integer_range_checked() {
        let v = Value::Number(Number::Int(300));
        assert!(u8::from_value(&v).is_err());
        assert_eq!(u16::from_value(&v).unwrap(), 300);
    }

    #[test]
    fn float_accepts_int_tokens() {
        let v = Value::Number(Number::Int(3));
        assert_eq!(f64::from_value(&v).unwrap(), 3.0);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let t = (1usize, 2.5f64);
        assert_eq!(<(usize, f64)>::from_value(&t.to_value()).unwrap(), t);
    }
}
