//! The in-memory JSON tree shared by the `serde` and `serde_json` shims.

use crate::Error;

/// A JSON number, keeping integers exact (seeds are `u64`; `f64` would lose
/// precision above 2⁵³).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An integer token (no `.`, `e` or `E` in the source).
    Int(i128),
    /// A floating-point token.
    Float(f64),
}

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up `name` in an object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Borrows the elements of an array.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }

    /// Borrows the entries of an object.
    pub fn as_object(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(entries) => Ok(entries),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }

    /// Borrows a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }

    /// Reads a number as `f64` (integers widen).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Number(Number::Float(f)) => Ok(*f),
            Value::Number(Number::Int(i)) => Ok(*i as f64),
            other => Err(Error::msg(format!("expected number, got {}", other.kind()))),
        }
    }

    /// Reads a number as an exact integer; integral floats are accepted.
    pub fn as_int(&self) -> Result<i128, Error> {
        match self {
            Value::Number(Number::Int(i)) => Ok(*i),
            Value::Number(Number::Float(f)) if f.fract() == 0.0 && f.abs() < 2f64.powi(53) => {
                Ok(*f as i128)
            }
            other => Err(Error::msg(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }
}
