//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The offline build cannot pull `syn`/`quote`, so this crate parses the
//! derive input with the bare `proc_macro` API. It supports exactly the
//! shapes the workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (including newtypes),
//! * unit structs,
//! * enums whose variants are unit, newtype, tuple or struct-like,
//!
//! with **no generics** and exactly one supported `#[serde(...)]` attribute:
//! `#[serde(default)]` on a named field, which substitutes
//! `Default::default()` when the field is absent from the input object (the
//! schema-evolution escape hatch for fields added after artifacts were
//! written). Any other `#[serde(...)]` content panics with a clear message,
//! so unsupported input fails the build loudly instead of serializing
//! wrongly.
//!
//! Encoding matches serde's externally-tagged default:
//!
//! * named struct  -> `{"field": ...}`
//! * newtype struct -> inner value
//! * tuple struct  -> `[...]`
//! * unit variant  -> `"Variant"`
//! * newtype variant -> `{"Variant": value}`
//! * tuple variant -> `{"Variant": [...]}`
//! * struct variant -> `{"Variant": {"field": ...}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: `name` is `Some` for named fields, `None` for tuple
/// positions; `default` is set by a `#[serde(default)]` field attribute.
struct Field {
    name: Option<String>,
    default: bool,
}

enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed {
        Input::Struct { name, shape } => {
            let body = serialize_shape(shape, "self");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed {
        Input::Struct { name, shape } => {
            let body = deserialize_shape(shape, name, None);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),\n", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let body = deserialize_shape(&v.shape, name, Some(&v.name));
                    format!(
                        "\"{}\" => {{ let v = payload; return {{ {body} }}; }}\n",
                        v.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::serde::Value::String(tag) = v {{\n\
                             match tag.as_str() {{ {unit_arms} _ => {{}} }}\n\
                         }}\n\
                         if let ::serde::Value::Object(entries) = v {{\n\
                             if entries.len() == 1 {{\n\
                                 let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                                 match tag.as_str() {{ {tagged_arms} _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::msg(format!(\n\
                             \"invalid {name} variant encoding: {{}}\", v.kind())))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl must parse")
}

// -------------------------------------------------------------- code emission

/// Serialization expression for one shape; `path` is how fields are reached
/// (`self` for structs, empty for match-bound variant fields).
fn serialize_shape(shape: &Shape, path: &str) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Object(vec![])".to_string(),
        Shape::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    let n = f.name.as_ref().unwrap();
                    if path.is_empty() {
                        format!("(\"{n}\".to_string(), ::serde::Serialize::to_value({n})),")
                    } else {
                        format!("(\"{n}\".to_string(), ::serde::Serialize::to_value(&{path}.{n})),")
                    }
                })
                .collect();
            format!("::serde::Value::Object(vec![{entries}])")
        }
        Shape::Tuple(1) => {
            if path.is_empty() {
                "::serde::Serialize::to_value(f0)".to_string()
            } else {
                format!("::serde::Serialize::to_value(&{path}.0)")
            }
        }
        Shape::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| {
                    if path.is_empty() {
                        format!("::serde::Serialize::to_value(f{i}),")
                    } else {
                        format!("::serde::Serialize::to_value(&{path}.{i}),")
                    }
                })
                .collect();
            format!("::serde::Value::Array(vec![{items}])")
        }
    }
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        Shape::Unit => {
            format!("{enum_name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n")
        }
        Shape::Named(fields) => {
            let binds: String = fields
                .iter()
                .map(|f| format!("{},", f.name.as_ref().unwrap()))
                .collect();
            let inner = serialize_shape(&v.shape, "");
            format!(
                "{enum_name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                     (\"{vn}\".to_string(), {inner})]),\n"
            )
        }
        Shape::Tuple(n) => {
            let binds: String = (0..*n).map(|i| format!("f{i},")).collect();
            let inner = serialize_shape(&v.shape, "");
            format!(
                "{enum_name}::{vn}({binds}) => ::serde::Value::Object(vec![\
                     (\"{vn}\".to_string(), {inner})]),\n"
            )
        }
    }
}

/// Deserialization statement(s) for one shape, reading from a `v: &Value`
/// binding and producing `Ok(...)`.
fn deserialize_shape(shape: &Shape, type_name: &str, variant: Option<&str>) -> String {
    let ctor = match variant {
        Some(v) => format!("{type_name}::{v}"),
        None => type_name.to_string(),
    };
    match shape {
        Shape::Unit => format!("Ok({ctor})"),
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let n = f.name.as_ref().unwrap();
                    if f.default {
                        // Absent field -> Default::default(); a present field
                        // still deserializes (and errors) normally, and a
                        // non-object input still errors through `as_object`.
                        format!(
                            "{n}: match v.as_object()?.iter().find(|(k, _)| k == \"{n}\") {{\n\
                                 Some((_, fv)) => ::serde::Deserialize::from_value(fv)?,\n\
                                 None => ::std::default::Default::default(),\n\
                             }},"
                        )
                    } else {
                        format!("{n}: ::serde::Deserialize::from_value(v.field(\"{n}\")?)?,")
                    }
                })
                .collect();
            format!("Ok({ctor} {{ {inits} }})")
        }
        Shape::Tuple(1) => format!("Ok({ctor}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?,"))
                .collect();
            format!(
                "{{ let a = v.as_array()?;\n\
                     if a.len() != {n} {{\n\
                         return Err(::serde::Error::msg(format!(\n\
                             \"expected {n} elements, got {{}}\", a.len())));\n\
                     }}\n\
                     Ok({ctor}({items})) }}"
            )
        }
    }
}

// ------------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive shim: unexpected token after struct name: {other:?}"),
            };
            Input::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive shim: expected enum body, got {other:?}"),
            };
            Input::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive shim: expected `struct` or `enum`, got `{other}`"),
    }
}

/// Advances past outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`), panicking on any `#[serde(...)]` attribute — the only
/// position where one is supported is a named field, whose attributes go
/// through `take_serde_default` *before* this function runs, so a serde
/// attribute seen here (container, variant, tuple position) is unsupported
/// and must fail the build loudly rather than be silently dropped.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(attr)) = tokens.get(*pos + 1) {
                    if matches!(attr.stream().into_iter().next(),
                        Some(TokenTree::Ident(i)) if i.to_string() == "serde")
                    {
                        panic!(
                            "serde_derive shim: `#[serde(...)]` is only supported as \
                             `#[serde(default)]` on a named struct/variant field, \
                             not here (attribute: {attr})"
                        );
                    }
                }
                *pos += 2; // `#` plus the bracket group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, got {other:?}"),
    }
}

/// Splits a field/variant list on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments don't split.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Scans a field's outer attributes for `#[serde(default)]`, panicking on
/// any other `#[serde(...)]` content so unsupported options fail the build
/// loudly. `pos` is left on the first token after the attributes.
fn take_serde_default(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut default = false;
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(attr)) = tokens.get(*pos + 1) {
            let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
                let args = match inner.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        g.stream().to_string()
                    }
                    other => panic!("serde_derive shim: malformed serde attribute: {other:?}"),
                };
                if args.trim() == "default" {
                    default = true;
                } else {
                    panic!(
                        "serde_derive shim: unsupported serde attribute `{args}` \
                         (only `default` on named fields is implemented)"
                    );
                }
            }
        }
        *pos += 2; // `#` plus the bracket group
    }
    default
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|tokens| {
            let mut pos = 0;
            let default = take_serde_default(&tokens, &mut pos);
            skip_attrs_and_vis(&tokens, &mut pos);
            let name = expect_ident(&tokens, &mut pos);
            match tokens.get(pos) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => {
                    panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}")
                }
            }
            Field {
                name: Some(name),
                default,
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let fields = split_top_level_commas(stream);
    for tokens in &fields {
        // Tuple positions support no serde attributes; scanning each field
        // routes any `#[serde(...)]` into skip_attrs_and_vis's panic.
        skip_attrs_and_vis(tokens, &mut 0);
    }
    fields.len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|tokens| {
            let mut pos = 0;
            skip_attrs_and_vis(&tokens, &mut pos);
            let name = expect_ident(&tokens, &mut pos);
            let shape = match tokens.get(pos) {
                None => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                    "serde_derive shim: explicit discriminants are not supported (variant `{name}`)"
                ),
                other => {
                    panic!("serde_derive shim: unexpected token in variant `{name}`: {other:?}")
                }
            };
            Variant { name, shape }
        })
        .collect()
}
