//! Offline JSON text layer over the vendored `serde` shim.
//!
//! Implements the three entry points the workspace uses —
//! [`to_string`], [`to_string_pretty`] and [`from_str`] — on top of
//! [`serde::Value`]. The writer emits shortest-round-trip floats (Rust's
//! `{}` formatting), the reader is a strict recursive-descent parser with
//! `\uXXXX` (including surrogate pairs) support.

#![forbid(unsafe_code)]

use serde::{Deserialize, Number, Serialize, Value};

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::Int(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::Float(f)) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats floats on re-parse ("1" would read back as Int).
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (idx, item) in items.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (idx, (key, val)) in entries.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require `\uXXXX` low half.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so valid UTF-8).
                    let len = utf8_len(b);
                    let chunk = &self.bytes[self.pos..self.pos + len];
                    out.push_str(std::str::from_utf8(chunk).expect("input is valid UTF-8"));
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(|i| Value::Number(Number::Int(i)))
                .or_else(|_| text.parse::<f64>().map(|f| Value::Number(Number::Float(f))))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn integral_floats_stay_floats() {
        let json = to_string(&vec![1.0f64, 2.0]).unwrap();
        assert_eq!(json, "[1.0,2.0]");
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = u64::MAX - 3;
        let json = to_string(&seed).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), seed);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"back\\slash\ttab π snowman ☃".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""☃""#).unwrap(), "☃");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn nested_containers_round_trip() {
        let v = vec![vec![1.0f64, 2.0], vec![], vec![-3.5]];
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&compact).unwrap(), v);
        assert_eq!(from_str::<Vec<Vec<f64>>>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.5 garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<f64> = from_str(" [ 1.0 , 2.0 ] ").unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }
}
