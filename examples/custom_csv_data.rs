//! Bring your own data: load a CSV file (the escape hatch for the *real*
//! COMPAS / Census / Credit datasets where licensing permits), one-hot
//! encode it, and run a scaler → iFair pipeline — the full §V-B
//! preprocessing on user-supplied data, persisted as one artifact.
//!
//! ```sh
//! cargo run --release --example custom_csv_data [path/to/data.csv]
//! ```
//!
//! Without an argument, a small demo CSV is written to a temp file first.

use ifair::core::IFairConfig;
use ifair::data::csv::{read_csv, ColumnRole, CsvSchema};
use ifair::data::OneHotEncoder;
use ifair::{FittedStage, Pipeline};
use std::io::BufReader;

const DEMO_CSV: &str = "\
age,income,occupation,gender,repaid
25,48000,engineer,female,yes
41,52000,teacher,male,yes
33,38000,\"sales, retail\",female,no
52,61000,engineer,male,yes
29,33000,teacher,female,no
47,58000,manager,male,yes
38,45000,\"sales, retail\",male,no
31,41000,manager,female,yes
26,30000,teacher,female,no
55,70000,engineer,male,yes
36,47000,manager,female,yes
44,36000,\"sales, retail\",male,no
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = match std::env::args().nth(1) {
        Some(p) => p.into(),
        None => {
            let p = std::env::temp_dir().join("ifair-demo.csv");
            std::fs::write(&p, DEMO_CSV)?;
            println!(
                "no CSV given — using a generated demo file at {}\n",
                p.display()
            );
            p
        }
    };

    // Declare each column's role; this is the only dataset-specific code.
    let schema = CsvSchema {
        roles: vec![
            ("age".into(), ColumnRole::Numeric),
            ("income".into(), ColumnRole::Numeric),
            ("occupation".into(), ColumnRole::Categorical),
            (
                "gender".into(),
                ColumnRole::Protected {
                    protected_value: "female".into(),
                },
            ),
            (
                "repaid".into(),
                ColumnRole::OutcomeBinary {
                    positive_value: "yes".into(),
                },
            ),
        ],
    };
    let file = std::fs::File::open(&path)?;
    let raw = read_csv(BufReader::new(file), &schema)?;
    println!(
        "loaded {} records, {} raw columns ({} protected group members)",
        raw.n_records(),
        raw.names.len(),
        raw.group.iter().filter(|&&g| g == 1).count()
    );

    // One-hot encode categoricals (§V-B); scaling happens inside the
    // pipeline so train-time statistics travel with the model.
    let ds = OneHotEncoder::fit_transform(&raw)?;
    println!(
        "encoded to {} features: {:?}",
        ds.n_features(),
        ds.feature_names
    );

    let pipeline = Pipeline::builder()
        .standard_scaler()
        .ifair(IFairConfig {
            k: 3,
            max_iters: 60,
            seed: 1,
            ..Default::default()
        })
        .fit(&ds)?;

    let Some(FittedStage::IFair(model)) = pipeline.stages().last() else {
        unreachable!("the pipeline ends in an iFair stage");
    };
    println!(
        "\niFair trained: K={} prototypes, best loss {:.4}",
        model.n_prototypes(),
        model.report().best().loss
    );
    println!(
        "learned attribute weights (protected columns near the end): {:?}",
        model
            .alpha()
            .iter()
            .map(|w| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // The whole chain — scaler statistics and the trained model — persists
    // as one schema-versioned artifact and round-trips bit-identically.
    let artifact = std::env::temp_dir().join("ifair-demo-pipeline.json");
    std::fs::write(&artifact, pipeline.to_json()?)?;
    let restored = Pipeline::from_json(&std::fs::read_to_string(&artifact)?)?;
    assert_eq!(restored.transform(&ds)?, pipeline.transform(&ds)?);
    println!(
        "\npipeline persisted to {} and reloaded bit-identically",
        artifact.display()
    );
    Ok(())
}
