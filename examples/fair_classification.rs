//! Fair classification on a COMPAS-style recidivism dataset with the
//! pipeline API: the same `scale → (representation) → logistic regression`
//! chain is fitted on raw data, masked data and an iFair-b representation,
//! then compared on utility vs individual fairness — the paper's §V-D
//! experiment in miniature.
//!
//! ```sh
//! cargo run --release --example fair_classification
//! ```

use ifair::core::{FairnessPairs, IFairConfig, InitStrategy};
use ifair::data::generators::compas::{self, CompasConfig};
use ifair::data::{train_test_split, Dataset};
use ifair::metrics::{accuracy, auc, consistency, equal_opportunity, statistical_parity};
use ifair::Pipeline;

fn main() {
    // A small COMPAS-like dataset: one-hot encoded columns, race as the
    // protected attribute, recidivism as the label.
    let ds = compas::generate(&CompasConfig {
        n_records: 900,
        seed: 42,
    });
    println!(
        "dataset: {} records x {} encoded features, protected = race",
        ds.n_records(),
        ds.n_features()
    );

    let (train_idx, test_idx) = train_test_split(ds.n_records(), 0.6, 1);
    let train = ds.subset(&train_idx);
    let test = ds.subset(&test_idx);

    // iFair-b: protected attribute weights initialized near zero.
    let ifair_config = IFairConfig {
        k: 30,
        lambda: 10.0,
        mu: 1.0,
        init: InitStrategy::NearZeroProtected,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 4000 },
        max_iters: 80,
        n_restarts: 2,
        seed: 42,
        ..Default::default()
    };

    // Each method is one pipeline; scaling is fitted inside the chain on
    // whatever the pipeline trains on, so there is no leakage plumbing.
    let evaluate = |label: &str, pipeline: &Pipeline, test: &Dataset| {
        let proba = pipeline.predict_proba(test).expect("widths match");
        let preds: Vec<f64> = proba
            .iter()
            .map(|&p| if p > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let y = test.labels();
        println!(
            "{label:<12} acc={:.2}  auc={:.2}  yNN={:.2}  parity={:.2}  eqopp={:.2}",
            accuracy(y, &preds),
            auc(y, &proba),
            // yNN neighbourhoods live in the original (masked) space.
            consistency(&test.masked_x(), &preds, 10),
            statistical_parity(&preds, &test.group),
            equal_opportunity(y, &preds, &test.group),
        );
    };

    println!("\nmethod       test metrics");
    let full = Pipeline::builder()
        .standard_scaler()
        .logistic_regression_default()
        .fit(&train)
        .expect("full-data pipeline fits");
    evaluate("full data", &full, &test);

    // Masked data: drop the protected columns before the same chain.
    let train_masked = train
        .with_features(train.masked_x())
        .expect("masking preserves rows");
    let test_masked = test
        .with_features(test.masked_x())
        .expect("masking preserves rows");
    let masked = Pipeline::builder()
        .standard_scaler()
        .logistic_regression_default()
        .fit(&train_masked)
        .expect("masked pipeline fits");
    evaluate("masked", &masked, &test_masked);

    println!("fitting iFair (K=30, λ=10, μ=1) ...");
    let fair = Pipeline::builder()
        .standard_scaler()
        .ifair(ifair_config)
        .logistic_regression_default()
        .fit(&train)
        .expect("iFair pipeline fits");
    evaluate("iFair-b", &fair, &test);

    println!(
        "\nexpected shape: iFair trades a few points of accuracy for a \
         substantially more consistent (individually fairer) classifier."
    );
}
