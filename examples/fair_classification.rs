//! Fair classification on a COMPAS-style recidivism dataset: train the same
//! logistic-regression classifier on raw data, masked data and an iFair-b
//! representation, and compare utility against individual fairness —
//! the paper's §V-D experiment in miniature.
//!
//! ```sh
//! cargo run --release --example fair_classification
//! ```

use ifair::core::{FairnessPairs, IFair, IFairConfig, InitStrategy};
use ifair::data::generators::compas::{self, CompasConfig};
use ifair::data::{train_test_split, StandardScaler};
use ifair::linalg::Matrix;
use ifair::metrics::{accuracy, auc, consistency, equal_opportunity, statistical_parity};
use ifair::models::LogisticRegression;

fn main() {
    // A small COMPAS-like dataset: 431 one-hot encoded columns, race as the
    // protected attribute, recidivism as the label.
    let ds = compas::generate(&CompasConfig {
        n_records: 900,
        seed: 42,
    });
    println!(
        "dataset: {} records x {} encoded features, protected = race",
        ds.n_records(),
        ds.n_features()
    );

    let (train_idx, test_idx) = train_test_split(ds.n_records(), 0.6, 1);
    let train = ds.subset(&train_idx);
    let test = ds.subset(&test_idx);
    let scaler = StandardScaler::fit(&train.x);
    let train = train
        .with_features(scaler.transform(&train.x))
        .expect("shape preserved");
    let test = test
        .with_features(scaler.transform(&test.x))
        .expect("shape preserved");

    // iFair-b: protected attribute weights initialized near zero.
    let config = IFairConfig {
        k: 30,
        lambda: 10.0,
        mu: 1.0,
        init: InitStrategy::NearZeroProtected,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 4000 },
        max_iters: 80,
        n_restarts: 2,
        seed: 42,
        ..Default::default()
    };
    println!("fitting iFair (K=30, λ=10, μ=1) ...");
    let ifair = IFair::fit(&train.x, &train.protected, &config).expect("training succeeds");

    let evaluate = |label: &str, train_x: &Matrix, test_x: &Matrix| {
        let clf = LogisticRegression::fit_default(train_x, train.labels());
        let proba = clf.predict_proba(test_x);
        let preds: Vec<f64> = proba
            .iter()
            .map(|&p| if p > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let y = test.labels();
        println!(
            "{label:<12} acc={:.2}  auc={:.2}  yNN={:.2}  parity={:.2}  eqopp={:.2}",
            accuracy(y, &preds),
            auc(y, &proba),
            // yNN neighbourhoods live in the original (masked) space.
            consistency(&test.masked_x(), &preds, 10),
            statistical_parity(&preds, &test.group),
            equal_opportunity(y, &preds, &test.group),
        );
    };

    println!("\nmethod       test metrics");
    evaluate("full data", &train.x, &test.x);
    evaluate("masked", &train.masked_x(), &test.masked_x());
    evaluate(
        "iFair-b",
        &ifair.transform(&train.x),
        &ifair.transform(&test.x),
    );
    println!(
        "\nexpected shape: iFair trades a few points of accuracy for a \
         substantially more consistent (individually fairer) classifier."
    );
}
