//! Individually fair learning-to-rank on a Xing-style job portal, with
//! optional FA\*IR post-processing for group parity — the paper's §V-E
//! pipeline in miniature, written against the estimator API: the ranking
//! model is a `Ridge` estimator fitted on whichever representation a
//! [`Transform`] produces.
//!
//! ```sh
//! cargo run --release --example fair_ranking
//! ```

use ifair::api::{Estimator, Predict, Transform};
use ifair::baselines::{rerank, FairConfig};
use ifair::core::{FairnessPairs, IFair, InitStrategy};
use ifair::data::generators::xing::{self, XingConfig};
use ifair::data::StandardScaler;
use ifair::metrics::{consistency, kendall_tau, protected_share_top_k, ranking_from_scores};
use ifair::models::RidgeConfig;

fn main() {
    // 57 job queries x ~40 candidates, gender protected; the deserved score
    // is a weighted sum of work experience, education and profile views.
    let rds = xing::generate(&XingConfig {
        n_queries: 57,
        seed: 42,
    });
    let (_, x) = StandardScaler::fit_transform(&rds.data.x);
    let data = rds.data.with_features(x).expect("shape preserved");
    let scores = data.labels().to_vec();

    println!("fitting iFair on {} candidates ...", data.n_records());
    // Fit on a subsample, transform everyone (the representation is
    // application-agnostic: the same model serves every query).
    let fit_idx: Vec<usize> = (0..data.n_records()).step_by(8).collect();
    let ifair = IFair::builder()
        .n_prototypes(10)
        .lambda(0.1)
        .mu(0.1)
        .init(InitStrategy::NearZeroProtected)
        .fairness_pairs(FairnessPairs::Subsampled { n_pairs: 4000 })
        .max_iters(80)
        .n_restarts(2)
        .seed(42)
        .fit(&data.subset(&fit_idx))
        .expect("training succeeds");

    // Rank with ridge regression on masked vs iFair representations — both
    // through the same Estimator/Predict contract.
    let masked_ds = data
        .with_features(data.masked_x())
        .expect("masking preserves rows");
    let fair_ds = data
        .with_features(Transform::transform(&ifair, &data).expect("widths match"))
        .expect("transform preserves rows");
    let masked = data.masked_x();

    let ridge = RidgeConfig { ridge: 1e-6 };
    let masked_scores = ridge
        .fit(&masked_ds)
        .and_then(|m| Predict::predict(&m, &masked_ds))
        .expect("regression fits");
    let fair_scores = ridge
        .fit(&fair_ds)
        .and_then(|m| Predict::predict(&m, &fair_ds))
        .expect("regression fits");

    let report = |label: &str, predicted: &[f64]| {
        let mut kt = 0.0;
        let mut ynn = 0.0;
        let mut prot = 0.0;
        for q in &rds.queries {
            let pred: Vec<f64> = q.indices.iter().map(|&i| predicted[i]).collect();
            let truth: Vec<f64> = q.indices.iter().map(|&i| scores[i]).collect();
            let group: Vec<u8> = q.indices.iter().map(|&i| data.group[i]).collect();
            kt += kendall_tau(&pred, &truth);
            ynn += consistency(&masked.select_rows(&q.indices), &pred, 10);
            prot += protected_share_top_k(&ranking_from_scores(&pred), &group, 10);
        }
        let n = rds.queries.len() as f64;
        println!(
            "{label:<22} KT={:.2}  yNN={:.2}  %protected@10={:.1}",
            kt / n,
            ynn / n,
            prot / n
        );
    };
    println!("\nmethod                 per-query means");
    report("masked data", &masked_scores);
    report("iFair-b", &fair_scores);

    // FA*IR post-processing on the iFair scores of one query: whatever
    // protected share the application needs, without retraining.
    let q = &rds.queries[0];
    let pred: Vec<f64> = q.indices.iter().map(|&i| fair_scores[i]).collect();
    let group: Vec<u8> = q.indices.iter().map(|&i| data.group[i]).collect();
    println!("\nFA*IR on iFair scores for query \"{}\":", q.id);
    for p in [0.3, 0.5, 0.7] {
        let fair = rerank(
            &pred,
            &group,
            10,
            &FairConfig {
                p,
                ..Default::default()
            },
        );
        let share =
            fair.order.iter().filter(|&&i| group[i] == 1).count() as f64 / fair.order.len() as f64;
        println!(
            "  p={p:.1}: top-10 protected share {:.0}%, {} candidates promoted",
            share * 100.0,
            fair.promoted.iter().filter(|&&b| b).count()
        );
    }
}
