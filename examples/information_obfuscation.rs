//! Information obfuscation (the paper's §V-F, Fig. 4): how much protected
//! information survives in a representation? Train an adversary to predict
//! gender from (i) census data with the gender column simply dropped and
//! (ii) an iFair representation — masking is not enough, because proxy
//! attributes (occupation, hours, marital status...) leak group membership.
//!
//! ```sh
//! cargo run --release --example information_obfuscation
//! ```

use ifair::api::Transform;
use ifair::core::{FairnessPairs, IFair, InitStrategy};
use ifair::data::generators::census::{self, CensusConfig};
use ifair::data::StandardScaler;
use ifair::models::{adversarial::majority_share, adversarial_accuracy};

fn main() {
    let ds = census::generate(&CensusConfig {
        n_records: 800,
        seed: 42,
    });
    let (_, x) = StandardScaler::fit_transform(&ds.x);
    let ds = ds.with_features(x).expect("shape preserved");
    println!(
        "census-style data: {} records x {} features, protected = gender",
        ds.n_records(),
        ds.n_features()
    );
    println!(
        "majority-class floor (accuracy of always guessing the bigger group): {:.2}\n",
        majority_share(&ds.group)
    );

    let masked = ds.masked_x();
    println!(
        "adversary on masked data:  {:.2}   <- proxies still leak gender",
        adversarial_accuracy(&masked, &ds.group, 7)
    );

    let model = IFair::builder()
        .n_prototypes(10)
        .lambda(1.0)
        .mu(1.0)
        .init(InitStrategy::NearZeroProtected)
        .fairness_pairs(FairnessPairs::Subsampled { n_pairs: 4000 })
        .max_iters(80)
        .n_restarts(2)
        .seed(42)
        .fit(&ds)
        .expect("training succeeds");
    let repr = Transform::transform(&model, &ds).expect("widths match");
    println!(
        "adversary on iFair repr:   {:.2}   <- close to the floor: obfuscated",
        adversarial_accuracy(&repr, &ds.group, 7)
    );
    println!(
        "\n(the representation never needed the group labels — iFair only \
         knows which *columns* are protected, not who is in which group)"
    );
}
