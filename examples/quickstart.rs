//! Quickstart: learn an individually fair representation of a handful of
//! user records with the builder API and inspect what the transformation
//! does.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ifair::api::Transform;
use ifair::core::{FitControl, IFair};
use ifair::data::generators::large::{LargeScale, LargeScaleConfig};
use ifair::data::Dataset;
use ifair::linalg::Matrix;

fn main() {
    // Eight job applicants: [qualification, experience, gender].
    // Gender (the last column) is protected. Records 0/1, 2/3, ... are
    // pairwise identical except for gender.
    let x = Matrix::from_rows(vec![
        vec![0.92, 0.80, 1.0],
        vec![0.92, 0.80, 0.0],
        vec![0.35, 0.40, 1.0],
        vec![0.35, 0.40, 0.0],
        vec![0.70, 0.15, 1.0],
        vec![0.70, 0.15, 0.0],
        vec![0.10, 0.95, 1.0],
        vec![0.10, 0.95, 0.0],
    ])
    .expect("rectangular data");
    let group: Vec<u8> = (0..8).map(|i| ((i + 1) % 2) as u8).collect();
    let ds = Dataset::new(
        x.clone(),
        vec!["qualification".into(), "experience".into(), "gender".into()],
        vec![false, false, true],
        None,
        group,
    )
    .expect("consistent dataset");

    // K=4 prototypes, equal weight on utility and individual fairness. The
    // on_restart callback streams training progress and could return
    // FitControl::Stop to cut the restart loop short.
    let model = IFair::builder()
        .n_prototypes(4)
        .lambda(1.0)
        .mu(1.0)
        .seed(7)
        .on_restart(|e| {
            println!(
                "  restart {}/{}: loss {:.4} (best so far {:.4})",
                e.restart + 1,
                e.n_restarts,
                e.report.loss,
                e.best_loss
            );
            FitControl::Continue
        })
        .fit(&ds)
        .expect("training succeeds");
    let x_fair = Transform::transform(&model, &ds).expect("same width as training data");

    println!("\nlearned attribute weights α = {:?}", model.alpha());
    println!(
        "training: {} restarts, best loss {:.4} ({} fairness pairs)\n",
        model.report().restarts.len(),
        model.report().best().loss,
        model.report().n_pairs,
    );

    println!("record  ->  fair representation");
    for i in 0..x.rows() {
        println!(
            "  {:?} -> [{:.3}, {:.3}, {:.3}]",
            x.row(i),
            x_fair.get(i, 0),
            x_fair.get(i, 1),
            x_fair.get(i, 2)
        );
    }

    // The point of iFair: records that differ only in the protected
    // attribute end up (nearly) indistinguishable.
    println!("\ndistance between gender-flipped twins (original -> fair):");
    for pair in 0..4 {
        let (i, j) = (2 * pair, 2 * pair + 1);
        let d_orig = dist(x.row(i), x.row(j));
        let d_fair = dist(x_fair.row(i), x_fair.row(j));
        println!("  pair {pair}: {d_orig:.3} -> {d_fair:.3}");
    }
    println!(
        "\nmean reconstruction error: {:.4}",
        model.reconstruction_error(&x)
    );

    // Scaling up: for datasets too large for full-batch L-BFGS (the fairness
    // loss is O(M²) in pairs), switch the builder to mini-batch Adam. Each
    // seeded step resamples a record batch plus fairness pairs within it, so
    // the per-step cost never depends on M — here the 10 000 records stream
    // straight out of an on-demand generator and are never materialized.
    println!("\n-- mini-batch training on a streamed 10 000-record dataset --");
    let generator = LargeScale::new(LargeScaleConfig {
        n_records: 10_000,
        n_numeric: 12,
        seed: 7,
        ..Default::default()
    });
    let protected = generator.protected_flags();
    let mut source = generator;
    let big_model = IFair::builder()
        .n_prototypes(8)
        .n_restarts(1)
        .seed(7)
        .mini_batch(256, 1024, 3, 0.05)
        .on_epoch(|e| {
            println!(
                "  epoch {}/{}: mean batch loss {:.4} over {} steps",
                e.epoch + 1,
                e.n_epochs,
                e.mean_batch_loss,
                e.steps
            );
            FitControl::Continue
        })
        .fit_source(&mut source, &protected)
        .expect("mini-batch training succeeds");
    println!(
        "  trained on {} pairs per batch; α[protected] = {:.4}",
        big_model.report().n_pairs,
        big_model.alpha().last().expect("non-empty α")
    );
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}
