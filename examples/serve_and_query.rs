//! Fit → save → serve → query, in one program: the full lifecycle of an
//! iFair artifact, ending with live HTTP requests against an in-process
//! `ifair-serve` server (the same server `ifair serve` boots from the CLI).
//!
//! ```sh
//! cargo run --release --example serve_and_query
//! ```

use ifair::core::IFairConfig;
use ifair::data::Dataset;
use ifair::linalg::Matrix;
use ifair::Pipeline;
use ifair_serve::{client, ModelRegistry, ModelSpec, Server, ServerConfig};

fn main() {
    // 1. Fit: the usual scale → iFair → classifier chain on synthetic
    //    applicants ([qualification, experience, gender], gender protected).
    let ds = applicants(64);
    let pipeline = Pipeline::builder()
        .standard_scaler()
        .ifair(IFairConfig {
            k: 4,
            max_iters: 40,
            n_restarts: 1,
            ..Default::default()
        })
        .logistic_regression_default()
        .fit(&ds)
        .expect("training succeeds");
    println!("fitted a {}-stage pipeline", pipeline.stages().len());

    // 2. Save: one schema-versioned JSON artifact.
    let path = std::env::temp_dir().join(format!("ifair-example-{}.json", std::process::id()));
    std::fs::write(&path, pipeline.to_json().expect("pipeline serializes"))
        .expect("artifact writes");
    println!("saved artifact to {}", path.display());

    // 3. Serve: load the artifact into a registry and boot the HTTP server
    //    on an ephemeral loopback port.
    let registry = ModelRegistry::load(vec![ModelSpec {
        name: "applicants".into(),
        path: path.clone(),
        precision: ifair_serve::Precision::F64,
    }])
    .expect("artifact loads");
    let handle = Server::bind("127.0.0.1:0", registry, ServerConfig::default())
        .expect("server binds")
        .spawn();
    let addr = handle.addr();
    println!("serving on http://{addr}\n");

    // 4. Query: the same requests `curl` would make.
    let (status, body) = client::get(addr, "/healthz").expect("healthz");
    println!("GET /healthz -> {status}\n  {body}");

    let request = r#"{"rows":[[0.9,0.4,1.0],[0.9,0.4,0.0],[0.2,0.7,1.0]]}"#;
    let (status, body) =
        client::post(addr, "/v1/models/applicants/transform", request).expect("transform");
    println!("POST /v1/models/applicants/transform -> {status}\n  {body}");

    let (status, body) =
        client::post(addr, "/v1/models/applicants/predict", request).expect("predict");
    println!("POST /v1/models/applicants/predict -> {status}\n  {body}");

    // The wire responses are bit-identical to in-process calls: two records
    // differing only in the protected attribute land on (nearly) the same
    // representation, served or not.
    let (status, body) = client::post(addr, "/admin/reload", "").expect("reload");
    println!("POST /admin/reload -> {status}\n  {body}");

    let (status, metrics) = client::get(addr, "/metrics").expect("metrics");
    let head: String = metrics
        .lines()
        .filter(|l| !l.starts_with('#'))
        .take(6)
        .collect::<Vec<_>>()
        .join("\n  ");
    println!("GET /metrics -> {status}\n  {head}\n  ...");

    handle.shutdown();
    std::fs::remove_file(&path).ok();
    println!("\nserver stopped; artifact cleaned up");
}

/// Deterministic synthetic applicants with a protected gender bit.
fn applicants(m: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let q = (i % 8) as f64 / 8.0;
            let e = ((i * 3 + 1) % 10) as f64 / 10.0;
            vec![q, e, (i % 2) as f64]
        })
        .collect();
    let labels: Vec<f64> = (0..m)
        .map(|i| f64::from((i % 8) as f64 / 8.0 + ((i * 3 + 1) % 10) as f64 / 20.0 > 0.6))
        .collect();
    Dataset::new(
        Matrix::from_rows(rows).expect("rectangular data"),
        vec!["qualification".into(), "experience".into(), "gender".into()],
        vec![false, false, true],
        Some(labels),
        (0..m).map(|i| (i % 2) as u8).collect(),
    )
    .expect("consistent dataset")
}
