//! # iFair — individually fair data representations (ICDE 2019 reproduction)
//!
//! This facade crate re-exports the full public API of the workspace:
//!
//! * [`core`] — the iFair model itself ([`core::IFair`]),
//! * [`data`] — dataset containers, encoders, scalers, splits and the five
//!   paper-dataset simulators,
//! * [`models`] — logistic regression, ridge regression and k-NN,
//! * [`metrics`] — utility, ranking and fairness metrics (yNN, parity,
//!   equality of opportunity, Kendall's tau, MAP, ...),
//! * [`baselines`] — LFR (Zemel et al. 2013), FA\*IR (Zehlike et al. 2017)
//!   and SVD representations,
//! * [`optim`] / [`linalg`] — the numerical substrates.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use ifair_baselines as baselines;
pub use ifair_core as core;
pub use ifair_data as data;
pub use ifair_linalg as linalg;
pub use ifair_metrics as metrics;
pub use ifair_models as models;
pub use ifair_optim as optim;
