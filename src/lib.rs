//! # iFair — individually fair data representations (ICDE 2019 reproduction)
//!
//! This facade crate re-exports the full public API of the workspace:
//!
//! * [`api`] — the estimator contract every method implements: the
//!   [`api::Estimator`] / [`api::Transform`] / [`api::Predict`] traits over
//!   [`data::Dataset`], the typed [`api::FitError`] / [`api::ConfigError`]
//!   family, and schema-versioned persistence,
//! * [`pipeline`] — composable `scale → represent → model` chains
//!   ([`pipeline::Pipeline`]) that fit, transform, predict and persist as
//!   one artifact,
//! * [`core`] — the iFair model itself ([`core::IFair`], with
//!   [`core::IFair::builder`] as the ergonomic front door),
//! * [`data`] — dataset containers, encoders, scalers, splits and the five
//!   paper-dataset simulators,
//! * [`models`] — logistic regression, ridge regression and k-NN,
//! * [`metrics`] — utility, ranking and fairness metrics (yNN, parity,
//!   equality of opportunity, Kendall's tau, MAP, ...),
//! * [`baselines`] — LFR (Zemel et al. 2013), FA\*IR (Zehlike et al. 2017)
//!   and SVD representations,
//! * [`optim`] / [`linalg`] — the numerical substrates.
//!
//! Fitted pipelines are *servable*: the `ifair-serve` crate (which sits on
//! top of this facade) loads persisted [`Pipeline`] / [`core::IFair`]
//! artifacts into an HTTP inference server with micro-batching and hot
//! reload — `ifair serve --model artifact.json`.
//!
//! See `README.md` for a quickstart, an API overview and the serving guide;
//! `docs/ARCHITECTURE.md` maps the whole workspace and
//! `docs/PAPER_MAP.md` maps the paper onto the code.

pub mod pipeline;

pub use ifair_api as api;
pub use ifair_baselines as baselines;
pub use ifair_core as core;
pub use ifair_data as data;
pub use ifair_linalg as linalg;
pub use ifair_metrics as metrics;
pub use ifair_models as models;
pub use ifair_optim as optim;

pub use ifair_core::{BoxCertificate, CertMethod, Certificate, CertifyError, DatasetCertification};
pub use pipeline::{FittedStage, Pipeline, PipelineBuilder, StageSpec};
