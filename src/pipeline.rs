//! Composable fit/transform/predict pipelines.
//!
//! Every experiment in the paper is the same chain — *scale → learn a
//! representation → train a downstream model* — so the facade offers it as a
//! first-class object: a [`Pipeline`] is an ordered list of **fitted**
//! stages that is itself a [`Transform`] and (when it ends in a model) a
//! [`Predict`], and persists as one schema-versioned JSON artifact.
//!
//! ```
//! use ifair::pipeline::Pipeline;
//! use ifair::core::IFairConfig;
//! use ifair::data::Dataset;
//! use ifair::linalg::Matrix;
//! use ifair::api::Predict;
//!
//! let ds = Dataset::new(
//!     Matrix::from_rows(vec![
//!         vec![0.9, 0.1, 1.0],
//!         vec![0.8, 0.2, 0.0],
//!         vec![0.2, 0.9, 1.0],
//!         vec![0.1, 0.8, 0.0],
//!     ]).unwrap(),
//!     vec!["a".into(), "b".into(), "gender".into()],
//!     vec![false, false, true],
//!     Some(vec![1.0, 1.0, 0.0, 0.0]),
//!     vec![1, 0, 1, 0],
//! ).unwrap();
//!
//! let pipeline = Pipeline::builder()
//!     .standard_scaler()
//!     .ifair(IFairConfig { k: 2, max_iters: 20, n_restarts: 1, ..Default::default() })
//!     .logistic_regression_default()
//!     .fit(&ds)
//!     .unwrap();
//! let proba = pipeline.predict_proba(&ds).unwrap();
//! assert_eq!(proba.len(), 4);
//!
//! // The whole chain round-trips through one versioned JSON artifact.
//! let json = pipeline.to_json().unwrap();
//! let restored = Pipeline::from_json(&json).unwrap();
//! assert_eq!(restored.predict_proba(&ds).unwrap(), proba);
//! ```

use ifair_api::scalers::{MinMaxScalerConfig, StandardScalerConfig};
use ifair_api::{check_epsilon, ensure, CertifyError, FitError, Predict, Transform};
use ifair_baselines::{Lfr, LfrConfig, SvdConfig, SvdRepresentation};
use ifair_core::certify::{next_down_f64, next_up_f64};
use ifair_core::par::WorkerPool;
use ifair_core::{Certificate, Estimator, IFair, IFairConfig, Precision};
use ifair_data::{Dataset, MinMaxScaler, StandardScaler};
use ifair_linalg::Matrix;
use ifair_models::{LogisticRegression, LogisticRegressionConfig, RidgeConfig, RidgeRegression};
use serde::{Deserialize, Serialize};

/// Kind tag of the versioned JSON envelope written by [`Pipeline::to_json`].
const PIPELINE_KIND: &str = "pipeline";

/// An unfitted pipeline stage: one estimator configuration.
#[derive(Debug, Clone)]
pub enum StageSpec {
    /// Unit-variance scaling (§V-B).
    StandardScaler(StandardScalerConfig),
    /// `[0, 1]` min-max scaling.
    MinMaxScaler(MinMaxScalerConfig),
    /// The iFair representation.
    IFair(IFairConfig),
    /// The LFR baseline representation.
    Lfr(LfrConfig),
    /// Truncated-SVD representation.
    Svd(SvdConfig),
    /// Logistic-regression classifier (terminal stage).
    LogisticRegression(LogisticRegressionConfig),
    /// Ridge-regression scorer (terminal stage).
    Ridge(RidgeConfig),
}

impl StageSpec {
    /// Whether the stage produces predictions (and must therefore be last).
    pub fn is_predictor(&self) -> bool {
        matches!(self, StageSpec::LogisticRegression(_) | StageSpec::Ridge(_))
    }

    /// Stage label used in error messages and reports.
    pub fn label(&self) -> &'static str {
        match self {
            StageSpec::StandardScaler(_) => "standard-scaler",
            StageSpec::MinMaxScaler(_) => "minmax-scaler",
            StageSpec::IFair(_) => "ifair",
            StageSpec::Lfr(_) => "lfr",
            StageSpec::Svd(_) => "svd",
            StageSpec::LogisticRegression(_) => "logistic-regression",
            StageSpec::Ridge(_) => "ridge",
        }
    }

    fn fit(&self, ds: &Dataset) -> Result<FittedStage, FitError> {
        Ok(match self {
            StageSpec::StandardScaler(c) => FittedStage::StandardScaler(c.fit(ds)?),
            StageSpec::MinMaxScaler(c) => FittedStage::MinMaxScaler(c.fit(ds)?),
            StageSpec::IFair(c) => FittedStage::IFair(c.fit(ds)?),
            StageSpec::Lfr(c) => FittedStage::Lfr(c.fit(ds)?),
            StageSpec::Svd(c) => FittedStage::Svd(c.fit(ds)?),
            StageSpec::LogisticRegression(c) => FittedStage::LogisticRegression(c.fit(ds)?),
            StageSpec::Ridge(c) => FittedStage::Ridge(c.fit(ds)?),
        })
    }
}

/// A fitted pipeline stage. Serializable: the whole chain persists as one
/// artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FittedStage {
    /// Fitted unit-variance scaler.
    StandardScaler(StandardScaler),
    /// Fitted min-max scaler.
    MinMaxScaler(MinMaxScaler),
    /// Trained iFair model.
    IFair(IFair),
    /// Trained LFR model.
    Lfr(Lfr),
    /// Fitted SVD representation.
    Svd(SvdRepresentation),
    /// Trained logistic-regression classifier.
    LogisticRegression(LogisticRegression),
    /// Trained ridge-regression scorer.
    Ridge(RidgeRegression),
}

impl FittedStage {
    /// Whether the stage predicts (terminal) rather than transforms.
    pub fn is_predictor(&self) -> bool {
        matches!(
            self,
            FittedStage::LogisticRegression(_) | FittedStage::Ridge(_)
        )
    }

    /// The stage as a [`Transform`], when it is one.
    pub fn as_transform(&self) -> Option<&dyn Transform> {
        match self {
            FittedStage::StandardScaler(s) => Some(s),
            FittedStage::MinMaxScaler(s) => Some(s),
            FittedStage::IFair(m) => Some(m),
            FittedStage::Lfr(m) => Some(m),
            FittedStage::Svd(m) => Some(m),
            FittedStage::LogisticRegression(_) | FittedStage::Ridge(_) => None,
        }
    }

    /// The feature width the stage expects at its input, when the fitted
    /// parameters pin one down: scalers and regressors know their training
    /// width exactly; for a masked SVD stage the reported width is the
    /// post-masking width (what the stage consumes when no column is flagged
    /// protected — the serving case).
    pub fn n_input_features(&self) -> usize {
        match self {
            FittedStage::StandardScaler(s) => s.n_features(),
            FittedStage::MinMaxScaler(s) => s.n_features(),
            FittedStage::IFair(m) => m.n_features(),
            FittedStage::Lfr(m) => m.prototypes().cols(),
            FittedStage::Svd(m) => m.components().rows(),
            FittedStage::LogisticRegression(m) => m.weights.len(),
            FittedStage::Ridge(m) => m.weights.len(),
        }
    }

    /// The stage as a [`Predict`], when it is one. Consistent with
    /// [`FittedStage::is_predictor`]: an LFR stage acts as a transform here
    /// (its built-in classifier head remains available through `Lfr`'s own
    /// [`Predict`] impl outside pipelines).
    pub fn as_predict(&self) -> Option<&dyn Predict> {
        match self {
            FittedStage::LogisticRegression(m) => Some(m),
            FittedStage::Ridge(m) => Some(m),
            _ => None,
        }
    }
}

/// An ordered chain of fitted stages: zero or more transforms, optionally
/// terminated by a predictor. Built with [`Pipeline::builder`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pipeline {
    stages: Vec<FittedStage>,
}

impl Pipeline {
    /// Starts an empty pipeline builder.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder { specs: Vec::new() }
    }

    /// Assembles a pipeline from already-fitted stages — for chains whose
    /// stages were trained on different record subsets (e.g. the bench
    /// harness fits the representation on a capped subset but the classifier
    /// on the full training split). Predictor stages must be last.
    pub fn from_stages(stages: Vec<FittedStage>) -> Result<Pipeline, FitError> {
        ensure(!stages.is_empty(), "stages", "pipeline has no stages")?;
        for (i, stage) in stages.iter().enumerate() {
            ensure(
                !stage.is_predictor() || i + 1 == stages.len(),
                "stages",
                format!(
                    "predictor stage must be last (position {} of {})",
                    i + 1,
                    stages.len()
                ),
            )?;
        }
        Ok(Pipeline { stages })
    }

    /// The fitted stages, in application order.
    pub fn stages(&self) -> &[FittedStage] {
        &self.stages
    }

    /// The feature width the first stage expects — what an inference server
    /// validates incoming rows against (see
    /// [`FittedStage::n_input_features`] for the masked-SVD caveat).
    pub fn n_input_features(&self) -> Option<usize> {
        self.stages.first().map(FittedStage::n_input_features)
    }

    /// Whether the chain ends in a predictor stage (i.e. whether
    /// [`Pipeline::predict`] can succeed).
    pub fn has_predictor(&self) -> bool {
        self.stages.last().is_some_and(FittedStage::is_predictor)
    }

    /// Applies every transform stage in order, returning the dataset carried
    /// between stages (the terminal predictor, if any, is not applied).
    pub fn transform_dataset(&self, ds: &Dataset) -> Result<Dataset, FitError> {
        transform_over(&self.stages, ds, None, Precision::F64)
    }

    /// [`Pipeline::transform_dataset`] with the iFair forward pass fanned
    /// out over `pool` (see [`IFair::transform_on`]). Bit-identical to the
    /// serial path for every pool size — the serving hot path.
    pub fn transform_dataset_on(
        &self,
        ds: &Dataset,
        pool: Option<&WorkerPool>,
    ) -> Result<Dataset, FitError> {
        transform_over(&self.stages, ds, pool, Precision::F64)
    }

    /// [`Pipeline::transform_dataset_on`] at an explicit serving precision.
    /// Under [`Precision::F32`] the iFair stage runs its single-precision
    /// forward pass ([`ifair_core::IFairF32`]) — tolerance-bounded against
    /// the `f64` result, still bit-identical across pool sizes; every other
    /// stage (scalers, SVD, predictors) stays `f64`. See "Kernel backends
    /// and precision contract" in `docs/ARCHITECTURE.md`.
    pub fn transform_dataset_on_prec(
        &self,
        ds: &Dataset,
        pool: Option<&WorkerPool>,
        precision: Precision,
    ) -> Result<Dataset, FitError> {
        transform_over(&self.stages, ds, pool, precision)
    }

    /// The representation produced by the transform stages (one row per
    /// record of `ds`).
    pub fn transform(&self, ds: &Dataset) -> Result<Matrix, FitError> {
        Ok(self.transform_dataset(ds)?.x)
    }

    /// [`Pipeline::transform`] on a worker pool (see
    /// [`Pipeline::transform_dataset_on`]).
    pub fn transform_on(
        &self,
        ds: &Dataset,
        pool: Option<&WorkerPool>,
    ) -> Result<Matrix, FitError> {
        Ok(self.transform_dataset_on(ds, pool)?.x)
    }

    /// [`Pipeline::transform_on`] at an explicit serving precision (see
    /// [`Pipeline::transform_dataset_on_prec`]).
    pub fn transform_on_prec(
        &self,
        ds: &Dataset,
        pool: Option<&WorkerPool>,
        precision: Precision,
    ) -> Result<Matrix, FitError> {
        Ok(self.transform_dataset_on_prec(ds, pool, precision)?.x)
    }

    /// Continuous scores of the terminal predictor applied to the
    /// transformed records.
    pub fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        let (predictor, prefix) = self.split_predictor()?;
        predictor.predict_proba(&transform_over(prefix, ds, None, Precision::F64)?)
    }

    /// Hard decisions of the terminal predictor applied to the transformed
    /// records.
    pub fn predict(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        let (predictor, prefix) = self.split_predictor()?;
        predictor.predict(&transform_over(prefix, ds, None, Precision::F64)?)
    }

    /// Runs the transform prefix **once** on `pool` and returns both outputs
    /// of the terminal predictor: `(scores, decisions)` =
    /// (`predict_proba`, `predict`). Bit-identical to calling
    /// [`Pipeline::predict_proba`] and [`Pipeline::predict`] separately —
    /// what a serving endpoint wants without paying the prefix twice.
    pub fn predict_scored_on(
        &self,
        ds: &Dataset,
        pool: Option<&WorkerPool>,
    ) -> Result<(Vec<f64>, Vec<f64>), FitError> {
        self.predict_scored_on_prec(ds, pool, Precision::F64)
    }

    /// [`Pipeline::predict_scored_on`] at an explicit serving precision:
    /// the transform prefix runs per
    /// [`Pipeline::transform_dataset_on_prec`]; the terminal predictor
    /// always scores in `f64` over the carried features.
    pub fn predict_scored_on_prec(
        &self,
        ds: &Dataset,
        pool: Option<&WorkerPool>,
        precision: Precision,
    ) -> Result<(Vec<f64>, Vec<f64>), FitError> {
        let (predictor, prefix) = self.split_predictor()?;
        let carried = transform_over(prefix, ds, pool, precision)?;
        Ok((
            predictor.predict_proba(&carried)?,
            predictor.predict(&carried)?,
        ))
    }

    /// Whether [`Pipeline::certify_rows`] can succeed on this chain: the
    /// last transform stage is an iFair representation reached only through
    /// scaler stages. A chain whose terminal stage is a bare predictor (or
    /// whose representation is LFR/SVD) has no certifiable representation
    /// space — serving layers check this up front to map the case to a
    /// typed 400 instead of dispatching a doomed batch.
    pub fn can_certify(&self) -> bool {
        self.certifiable_prefix().is_ok()
    }

    /// Certifies every row of `x` (raw input space): a sound bound δ such
    /// that **every** input within the box `[row − ε, row + ε]` maps within
    /// δ of the row's own representation. The ε-box is threaded through the
    /// fitted scaler stages exactly (they are monotone per coordinate, so
    /// transforming the two endpoint matrices bounds the image of the whole
    /// box; endpoints are then widened outward two representable steps),
    /// and the iFair stage runs the interval certification kernel of
    /// [`ifair_core::certify`]. Under [`Precision::F32`] the bound covers
    /// the single-precision serving transform instead. Certificates are
    /// bit-identical for every pool size.
    pub fn certify_rows(
        &self,
        x: &Matrix,
        eps: f64,
        pool: Option<&WorkerPool>,
        precision: Precision,
    ) -> Result<Vec<Certificate>, CertifyError> {
        check_epsilon(eps)?;
        let (scalers, model) = self.certifiable_prefix()?;
        if let Some(n) = self.n_input_features() {
            if x.cols() != n {
                return Err(CertifyError::Model(ifair_api::shape_error(format!(
                    "rows have {} features but the pipeline expects {n}",
                    x.cols()
                ))));
            }
        }
        if x.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(CertifyError::Model(ifair_api::shape_error(
                "rows contain non-finite values",
            )));
        }
        let (rows, cols) = x.shape();
        let mut lo = Matrix::zeros(rows, cols);
        let mut hi = Matrix::zeros(rows, cols);
        for ((&v, l), h) in x
            .as_slice()
            .iter()
            .zip(lo.as_mut_slice())
            .zip(hi.as_mut_slice())
        {
            *l = next_down_f64(v - eps);
            *h = next_up_f64(v + eps);
        }
        for stage in scalers {
            match stage {
                FittedStage::StandardScaler(s) => {
                    lo = s.transform(&lo);
                    hi = s.transform(&hi);
                }
                FittedStage::MinMaxScaler(s) => {
                    lo = s.transform(&lo);
                    hi = s.transform(&hi);
                }
                _ => unreachable!("certifiable_prefix admits only scaler stages"),
            }
            // The scalers are monotone per coordinate even in floating
            // point, so the transformed endpoints already bracket the image
            // of every interior point; two outward steps add margin for
            // free.
            for v in lo.as_mut_slice() {
                *v = next_down_f64(next_down_f64(*v));
            }
            for v in hi.as_mut_slice() {
                *v = next_up_f64(next_up_f64(*v));
            }
        }
        let boxes = match precision {
            Precision::F32 => model.to_f32().certify_boxes(&lo, &hi, pool)?,
            Precision::F64 => model.certify_boxes(&lo, &hi, pool)?,
        };
        Ok(boxes
            .into_iter()
            .map(|b| Certificate {
                eps,
                delta: b.delta,
                method: b.method,
            })
            .collect())
    }

    /// Splits the chain into (scaler prefix, terminal iFair representation)
    /// when the chain is certifiable, or explains why it is not.
    fn certifiable_prefix(&self) -> Result<(&[FittedStage], &IFair), CertifyError> {
        let transforms: &[FittedStage] = match self.stages.split_last() {
            Some((last, prefix)) if last.is_predictor() => prefix,
            _ => &self.stages,
        };
        match transforms.split_last() {
            None => Err(CertifyError::Unsupported(
                "the artifact's terminal stage is a bare predictor with no \
                 representation space to certify"
                    .into(),
            )),
            Some((FittedStage::IFair(m), prefix)) => {
                for stage in prefix {
                    match stage {
                        FittedStage::StandardScaler(_) | FittedStage::MinMaxScaler(_) => {}
                        other => {
                            return Err(CertifyError::Unsupported(format!(
                                "certification requires a scaler-only prefix before the \
                                 iFair stage, found `{}`",
                                stage_label(other)
                            )));
                        }
                    }
                }
                Ok((prefix, m))
            }
            Some((other, _)) => Err(CertifyError::Unsupported(format!(
                "certification requires an iFair representation as the last \
                 transform stage, found `{}`",
                stage_label(other)
            ))),
        }
    }

    fn split_predictor(&self) -> Result<(&dyn Predict, &[FittedStage]), FitError> {
        match self.stages.split_last() {
            Some((last, prefix)) if last.is_predictor() => Ok((
                last.as_predict().expect("is_predictor implies as_predict"),
                prefix,
            )),
            _ => Err(FitError::Config(ifair_api::ConfigError::new(
                "stages",
                "pipeline has no terminal predictor stage",
            ))),
        }
    }

    /// Serializes the whole chain into one schema-versioned JSON artifact.
    pub fn to_json(&self) -> Result<String, FitError> {
        ifair_api::to_versioned_json(PIPELINE_KIND, self)
    }

    /// Restores a pipeline persisted by [`Pipeline::to_json`], rejecting
    /// unknown schema versions and mismatched kinds.
    pub fn from_json(json: &str) -> Result<Pipeline, FitError> {
        ifair_api::from_versioned_json(PIPELINE_KIND, json)
    }
}

impl Transform for Pipeline {
    fn transform(&self, ds: &Dataset) -> Result<Matrix, FitError> {
        Pipeline::transform(self, ds)
    }
}

impl Predict for Pipeline {
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        Pipeline::predict_proba(self, ds)
    }

    fn predict(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        Pipeline::predict(self, ds)
    }
}

/// Stage label of a fitted stage, mirroring [`StageSpec::label`].
fn stage_label(stage: &FittedStage) -> &'static str {
    match stage {
        FittedStage::StandardScaler(_) => "standard-scaler",
        FittedStage::MinMaxScaler(_) => "minmax-scaler",
        FittedStage::IFair(_) => "ifair",
        FittedStage::Lfr(_) => "lfr",
        FittedStage::Svd(_) => "svd",
        FittedStage::LogisticRegression(_) => "logistic-regression",
        FittedStage::Ridge(_) => "ridge",
    }
}

/// Chains the transform stages of `stages` over `ds` (predictors skipped).
/// When `pool` is given, the iFair stage — the only stage with a non-trivial
/// forward pass — rides it via [`IFair::transform_on`]; every stage's output
/// is bit-identical to the serial path. Under [`Precision::F32`] the iFair
/// stage is lowered per call (`K·N` casts — noise next to the transform
/// itself) and runs its `f32` forward pass; all other stages stay `f64`.
fn transform_over(
    stages: &[FittedStage],
    ds: &Dataset,
    pool: Option<&WorkerPool>,
    precision: Precision,
) -> Result<Dataset, FitError> {
    let mut current = ds.clone();
    for stage in stages {
        match stage {
            FittedStage::IFair(m) if precision == Precision::F32 => {
                ifair_api::check_width(&current, m.n_features(), "iFair model")?;
                let x = m.to_f32().transform_on(&current.x, pool);
                current = current.with_features(x).map_err(FitError::from)?;
            }
            FittedStage::IFair(m) if pool.is_some() => {
                ifair_api::check_width(&current, m.n_features(), "iFair model")?;
                let x = m.transform_on(&current.x, pool);
                current = current.with_features(x).map_err(FitError::from)?;
            }
            _ => {
                if let Some(t) = stage.as_transform() {
                    current = t.transform_dataset(&current)?;
                }
            }
        }
    }
    Ok(current)
}

/// Assembles stage specs, then fits them left to right: each stage trains on
/// the output of the previous stage's transform — exactly the hand-wired
/// experiment plumbing, folded into one object.
#[derive(Debug, Clone, Default)]
pub struct PipelineBuilder {
    specs: Vec<StageSpec>,
}

impl PipelineBuilder {
    /// Appends an arbitrary stage spec.
    pub fn stage(mut self, spec: StageSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Appends a unit-variance scaler with default settings.
    pub fn standard_scaler(self) -> Self {
        self.stage(StageSpec::StandardScaler(StandardScalerConfig::default()))
    }

    /// Appends a min-max scaler.
    pub fn min_max_scaler(self) -> Self {
        self.stage(StageSpec::MinMaxScaler(MinMaxScalerConfig))
    }

    /// Appends an iFair representation stage.
    pub fn ifair(self, config: IFairConfig) -> Self {
        self.stage(StageSpec::IFair(config))
    }

    /// Appends an LFR representation stage.
    pub fn lfr(self, config: LfrConfig) -> Self {
        self.stage(StageSpec::Lfr(config))
    }

    /// Appends a truncated-SVD representation stage.
    pub fn svd(self, config: SvdConfig) -> Self {
        self.stage(StageSpec::Svd(config))
    }

    /// Appends a terminal logistic-regression classifier.
    pub fn logistic_regression(self, config: LogisticRegressionConfig) -> Self {
        self.stage(StageSpec::LogisticRegression(config))
    }

    /// Appends a terminal logistic-regression classifier with defaults.
    pub fn logistic_regression_default(self) -> Self {
        self.logistic_regression(LogisticRegressionConfig::default())
    }

    /// Appends a terminal ridge-regression scorer.
    pub fn ridge(self, config: RidgeConfig) -> Self {
        self.stage(StageSpec::Ridge(config))
    }

    /// The assembled specs.
    pub fn specs(&self) -> &[StageSpec] {
        &self.specs
    }

    /// Fits every stage in order on `ds`.
    pub fn fit(self, ds: &Dataset) -> Result<Pipeline, FitError> {
        ensure(!self.specs.is_empty(), "stages", "pipeline has no stages")?;
        for (i, spec) in self.specs.iter().enumerate() {
            ensure(
                !spec.is_predictor() || i + 1 == self.specs.len(),
                "stages",
                format!(
                    "predictor stage `{}` must be last (position {} of {})",
                    spec.label(),
                    i + 1,
                    self.specs.len()
                ),
            )?;
        }
        let mut current = ds.clone();
        let mut stages = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let fitted = spec.fit(&current)?;
            if let Some(t) = fitted.as_transform() {
                current = t.transform_dataset(&current)?;
            }
            stages.push(fitted);
        }
        Ok(Pipeline { stages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        // Deterministic, linearly separable-ish data with a protected bit.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                vec![t, 1.0 - t + 0.05 * ((i * 7 % 5) as f64), (i % 2) as f64]
            })
            .collect();
        Dataset::new(
            Matrix::from_rows(rows).unwrap(),
            vec!["a".into(), "b".into(), "gender".into()],
            vec![false, false, true],
            Some(
                (0..n)
                    .map(|i| f64::from(i as f64 / n as f64 > 0.5))
                    .collect(),
            ),
            (0..n).map(|i| (i % 2) as u8).collect(),
        )
        .unwrap()
    }

    fn quick_ifair() -> IFairConfig {
        IFairConfig {
            k: 3,
            max_iters: 25,
            n_restarts: 1,
            ..Default::default()
        }
    }

    #[test]
    fn minibatch_ifair_stage_composes_and_round_trips() {
        // The stochastic training path is just configuration as far as the
        // pipeline is concerned: a MiniBatch iFair stage fits, transforms,
        // persists, and reloads like any other stage.
        let ds = toy(64);
        let config = IFairConfig {
            k: 3,
            n_restarts: 1,
            strategy: ifair_core::FitStrategy::MiniBatch {
                batch_records: 16,
                pairs_per_batch: 64,
                epochs: 2,
                learning_rate: 0.05,
            },
            ..Default::default()
        };
        let pipeline = Pipeline::builder()
            .min_max_scaler()
            .ifair(config.clone())
            .fit(&ds)
            .unwrap();
        let repr = pipeline.transform(&ds).unwrap();
        assert_eq!(repr.shape(), (64, 3));
        assert!(repr.as_slice().iter().all(|v| v.is_finite()));

        // Same seed, same stage config -> bit-identical refit.
        let again = Pipeline::builder()
            .min_max_scaler()
            .ifair(config)
            .fit(&ds)
            .unwrap();
        assert_eq!(again.transform(&ds).unwrap(), repr);

        // The strategy travels through pipeline persistence.
        let back = Pipeline::from_json(&pipeline.to_json().unwrap()).unwrap();
        assert_eq!(back.transform(&ds).unwrap(), repr);
    }

    #[test]
    fn scaler_ifair_logreg_matches_hand_wired_path_bit_identically() {
        let ds = toy(24);
        let pipeline = Pipeline::builder()
            .standard_scaler()
            .ifair(quick_ifair())
            .logistic_regression_default()
            .fit(&ds)
            .unwrap();

        // Hand-wired: the plumbing every bench binary used to repeat.
        let scaler = StandardScaler::fit(&ds.x);
        let scaled = scaler.transform(&ds.x);
        let model = IFair::fit(&scaled, &ds.protected, &quick_ifair()).unwrap();
        let repr = model.transform(&scaled);
        let clf = LogisticRegression::fit_default(&repr, ds.labels()).unwrap();

        assert_eq!(pipeline.transform(&ds).unwrap(), repr);
        assert_eq!(
            pipeline.predict_proba(&ds).unwrap(),
            clf.predict_proba(&repr)
        );
        assert_eq!(pipeline.predict(&ds).unwrap(), clf.predict(&repr));
    }

    #[test]
    fn pipeline_without_predictor_still_transforms() {
        let ds = toy(16);
        let pipeline = Pipeline::builder()
            .standard_scaler()
            .svd(SvdConfig::new(2))
            .fit(&ds)
            .unwrap();
        assert_eq!(pipeline.transform(&ds).unwrap().shape(), (16, 2));
        let err = pipeline.predict(&ds).unwrap_err();
        assert!(err.to_string().contains("predictor"));
    }

    #[test]
    fn predictor_must_be_last() {
        let ds = toy(16);
        let err = Pipeline::builder()
            .logistic_regression_default()
            .standard_scaler()
            .fit(&ds)
            .unwrap_err();
        assert!(matches!(err, FitError::Config(_)));
        assert!(err.to_string().contains("must be last"));
        assert!(Pipeline::builder().fit(&ds).is_err());
    }

    #[test]
    fn ridge_pipeline_predicts_scores() {
        let ds = toy(20);
        let pipeline = Pipeline::builder()
            .standard_scaler()
            .ridge(RidgeConfig::default())
            .fit(&ds)
            .unwrap();
        let scores = pipeline.predict(&ds).unwrap();
        assert_eq!(scores.len(), 20);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn pooled_paths_are_bit_identical_to_serial() {
        let ds = toy(96);
        let pipeline = Pipeline::builder()
            .standard_scaler()
            .ifair(quick_ifair())
            .logistic_regression_default()
            .fit(&ds)
            .unwrap();
        assert_eq!(pipeline.n_input_features(), Some(3));
        assert!(pipeline.has_predictor());

        let repr = pipeline.transform(&ds).unwrap();
        let proba = pipeline.predict_proba(&ds).unwrap();
        let decisions = pipeline.predict(&ds).unwrap();
        for lanes in [1usize, 2, 4] {
            let pool = WorkerPool::new(lanes);
            assert_eq!(pipeline.transform_on(&ds, Some(&pool)).unwrap(), repr);
            let (scores, hard) = pipeline.predict_scored_on(&ds, Some(&pool)).unwrap();
            assert_eq!(scores, proba, "lanes={lanes}");
            assert_eq!(hard, decisions, "lanes={lanes}");
        }
        // pool == None degrades to the plain serial path.
        assert_eq!(pipeline.transform_on(&ds, None).unwrap(), repr);
        // A predictor-less chain still reports a typed error.
        let bare = Pipeline::builder().standard_scaler().fit(&ds).unwrap();
        assert!(bare.predict_scored_on(&ds, None).is_err());
        assert!(!bare.has_predictor());
    }

    #[test]
    fn f32_precision_path_tracks_f64_and_is_pool_invariant() {
        let ds = toy(96);
        let pipeline = Pipeline::builder()
            .standard_scaler()
            .ifair(quick_ifair())
            .logistic_regression_default()
            .fit(&ds)
            .unwrap();

        let f64_repr = pipeline.transform_on(&ds, None).unwrap();
        let f32_repr = pipeline
            .transform_on_prec(&ds, None, Precision::F32)
            .unwrap();
        assert_eq!(f32_repr.shape(), f64_repr.shape());
        for (a, b) in f32_repr.as_slice().iter().zip(f64_repr.as_slice()) {
            assert!((a - b).abs() < 1e-4, "f32 {a} vs f64 {b}");
        }

        // The f32 path keeps the pool-invariance contract: every pool size
        // reproduces the serial f32 result bit-for-bit.
        let (scores, hard) = pipeline
            .predict_scored_on_prec(&ds, None, Precision::F32)
            .unwrap();
        for lanes in [1usize, 2, 4] {
            let pool = WorkerPool::new(lanes);
            let pooled = pipeline
                .transform_on_prec(&ds, Some(&pool), Precision::F32)
                .unwrap();
            assert_eq!(pooled, f32_repr, "lanes={lanes}");
            let (s, h) = pipeline
                .predict_scored_on_prec(&ds, Some(&pool), Precision::F32)
                .unwrap();
            assert_eq!(s, scores, "lanes={lanes}");
            assert_eq!(h, hard, "lanes={lanes}");
        }

        // F64 through the _prec spelling is the plain path, bit-for-bit.
        assert_eq!(
            pipeline
                .transform_on_prec(&ds, None, Precision::F64)
                .unwrap(),
            f64_repr
        );
    }

    #[test]
    fn json_roundtrip_is_bit_identical() {
        let ds = toy(24);
        let pipeline = Pipeline::builder()
            .standard_scaler()
            .ifair(quick_ifair())
            .logistic_regression_default()
            .fit(&ds)
            .unwrap();
        let json = pipeline.to_json().unwrap();
        let restored = Pipeline::from_json(&json).unwrap();
        assert_eq!(restored.stages().len(), 3);
        assert_eq!(
            restored.transform(&ds).unwrap(),
            pipeline.transform(&ds).unwrap()
        );
        assert_eq!(
            restored.predict_proba(&ds).unwrap(),
            pipeline.predict_proba(&ds).unwrap()
        );
    }

    #[test]
    fn unknown_schema_version_fails_clearly() {
        let ds = toy(16);
        let pipeline = Pipeline::builder().standard_scaler().fit(&ds).unwrap();
        let json = pipeline.to_json().unwrap();
        let bumped = json.replacen("\"schema_version\":1", "\"schema_version\":2", 1);
        assert_ne!(json, bumped);
        let err = Pipeline::from_json(&bumped).unwrap_err();
        assert!(matches!(err, FitError::SchemaVersion { found: 2, .. }));
        // A model artifact is not a pipeline artifact.
        let model = IFair::fit(
            &StandardScaler::fit(&ds.x).transform(&ds.x),
            &ds.protected,
            &quick_ifair(),
        )
        .unwrap();
        assert!(Pipeline::from_json(&model.to_json().unwrap()).is_err());
    }

    #[test]
    fn lfr_stage_threads_group_membership() {
        let ds = toy(24);
        let pipeline = Pipeline::builder()
            .min_max_scaler()
            .lfr(LfrConfig {
                k: 3,
                max_iters: 30,
                n_restarts: 1,
                ..Default::default()
            })
            .logistic_regression_default()
            .fit(&ds)
            .unwrap();
        let proba = pipeline.predict_proba(&ds).unwrap();
        assert_eq!(proba.len(), 24);
        assert!(proba.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}
