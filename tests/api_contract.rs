//! The estimator-contract test suite: one generic checker exercised against
//! every method in the workspace, plus the pipeline equivalence guarantees —
//! a saved pipeline reloads bit-identically, and the pipeline path
//! reproduces the hand-wired `crates/bench` experiment plumbing exactly.

use ifair::api::{Estimator, Predict, Transform};
use ifair::baselines::{LfrConfig, SvdConfig};
use ifair::core::{FairnessPairs, IFairConfig};
use ifair::data::generators::credit::{self, CreditConfig};
use ifair::data::Dataset;
use ifair::models::{LogisticRegressionConfig, RidgeConfig};
use ifair::{FittedStage, Pipeline};
use ifair_bench::classification::{
    eval_classification, prepare_classification, repr_ifair, PrepareCaps,
};
use ifair_metrics::{
    accuracy, auc, consistency_with_neighbors, equal_opportunity, statistical_parity,
};

/// A small labeled dataset every estimator can fit on.
fn contract_dataset() -> Dataset {
    credit::generate(&CreditConfig {
        n_records: 80,
        seed: 17,
    })
}

/// Generic contract check for estimators whose fitted model transforms:
/// fit succeeds, the output has one row per record, and refitting with the
/// same seed reproduces the transform bit-identically.
fn check_transformer<E>(estimator: &E, ds: &Dataset)
where
    E: Estimator,
    E::Fitted: Transform,
{
    let fitted = estimator.fit(ds).expect("fit succeeds on valid data");
    let out = fitted.transform(ds).expect("transform succeeds");
    assert_eq!(out.rows(), ds.n_records(), "one output row per record");
    assert!(out.cols() >= 1, "transform produced no features");
    assert!(
        out.as_slice().iter().all(|v| v.is_finite()),
        "transform produced non-finite values"
    );
    // Determinism under a fixed seed: fit → transform twice, bit-identical.
    let refit = estimator.fit(ds).expect("refit succeeds");
    assert_eq!(
        refit.transform(ds).expect("transform succeeds"),
        out,
        "refitting with the same configuration must be bit-identical"
    );
}

/// Generic contract check for estimators whose fitted model predicts:
/// score vectors align with the records and refits are bit-identical.
fn check_predictor<E>(estimator: &E, ds: &Dataset)
where
    E: Estimator,
    E::Fitted: Predict,
{
    let fitted = estimator.fit(ds).expect("fit succeeds on valid data");
    let proba = fitted.predict_proba(ds).expect("predict_proba succeeds");
    let preds = fitted.predict(ds).expect("predict succeeds");
    assert_eq!(proba.len(), ds.n_records());
    assert_eq!(preds.len(), ds.n_records());
    assert!(proba.iter().all(|p| p.is_finite()));
    let refit = estimator.fit(ds).expect("refit succeeds");
    assert_eq!(refit.predict_proba(ds).expect("succeeds"), proba);
}

#[test]
fn ifair_satisfies_the_estimator_contract() {
    let ds = contract_dataset();
    check_transformer(
        &IFairConfig {
            k: 4,
            max_iters: 30,
            n_restarts: 2,
            fairness_pairs: FairnessPairs::Subsampled { n_pairs: 500 },
            ..Default::default()
        },
        &ds,
    );
}

#[test]
fn lfr_satisfies_the_estimator_contract() {
    let ds = contract_dataset();
    let config = LfrConfig {
        k: 4,
        max_iters: 30,
        n_restarts: 1,
        ..Default::default()
    };
    check_transformer(&config, &ds);
    check_predictor(&config, &ds);
}

#[test]
fn svd_satisfies_the_estimator_contract() {
    let ds = contract_dataset();
    check_transformer(&SvdConfig::new(3), &ds);
    check_transformer(&SvdConfig { k: 3, masked: true }, &ds);
}

#[test]
fn downstream_models_satisfy_the_estimator_contract() {
    let ds = contract_dataset();
    check_predictor(&LogisticRegressionConfig::default(), &ds);
    check_predictor(&RidgeConfig::default(), &ds);
}

#[test]
fn estimators_report_typed_errors_on_unlabeled_data() {
    let mut ds = contract_dataset();
    ds.y = None;
    assert!(LogisticRegressionConfig::default().fit(&ds).is_err());
    assert!(RidgeConfig::default().fit(&ds).is_err());
    assert!(LfrConfig::default().fit(&ds).is_err());
    // iFair never needs labels.
    assert!(IFairConfig {
        k: 3,
        max_iters: 10,
        n_restarts: 1,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 200 },
        ..Default::default()
    }
    .fit(&ds)
    .is_ok());
}

#[test]
fn pipeline_save_load_transform_is_bit_identical() {
    let ds = contract_dataset();
    let pipeline = Pipeline::builder()
        .standard_scaler()
        .ifair(IFairConfig {
            k: 4,
            max_iters: 25,
            n_restarts: 1,
            fairness_pairs: FairnessPairs::Subsampled { n_pairs: 500 },
            ..Default::default()
        })
        .logistic_regression_default()
        .fit(&ds)
        .expect("pipeline fits");
    let restored = Pipeline::from_json(&pipeline.to_json().expect("serializes"))
        .expect("versioned artifact loads");
    assert_eq!(
        restored.transform(&ds).expect("transforms"),
        pipeline.transform(&ds).expect("transforms"),
        "save → load → transform must be bit-identical"
    );
    assert_eq!(
        restored.predict_proba(&ds).expect("predicts"),
        pipeline.predict_proba(&ds).expect("predicts"),
    );
}

/// The acceptance gate of the API redesign: a `Pipeline` assembled from the
/// same fitted stages reproduces the hand-wired `crates/bench`
/// classification path — representation, classifier scores, and every
/// Table-2-style metric — bit-identically.
#[test]
fn pipeline_reproduces_the_hand_wired_bench_path_bit_identically() {
    let ds = credit::generate(&CreditConfig {
        n_records: 240,
        seed: 5,
    });
    let p = prepare_classification(
        &ds,
        "credit-contract",
        7,
        PrepareCaps {
            fit_cap: 60,
            eval_cap: 60,
        },
    );
    let config = IFairConfig {
        k: 6,
        max_iters: 40,
        n_restarts: 2,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 1000 },
        ..Default::default()
    };

    // Hand-wired path: bench fits iFair on the capped subset, trains the
    // classifier on the transformed training split, and evaluates val/test.
    let (repr, model) = repr_ifair(&p, &config).expect("bench path fits");
    let (_, bench_test) = eval_classification(&p, &repr);
    let clf = ifair::models::LogisticRegression::fit_default(&repr.train, p.train.labels())
        .expect("classifier fits");

    // Pipeline path: the same fitted stages, assembled as one object.
    let pipeline = Pipeline::from_stages(vec![
        FittedStage::IFair(model),
        FittedStage::LogisticRegression(clf),
    ])
    .expect("valid stage order");
    let proba = pipeline.predict_proba(&p.test).expect("widths match");

    // The classifier scores are bit-identical, so every derived metric is
    // too — recompute them exactly as `eval_classification` does.
    let preds: Vec<f64> = proba
        .iter()
        .map(|&pr| if pr > 0.5 { 1.0 } else { 0.0 })
        .collect();
    let y = p.test.labels();
    assert_eq!(accuracy(y, &preds), bench_test.acc);
    assert_eq!(auc(y, &proba), bench_test.auc);
    assert_eq!(
        equal_opportunity(y, &preds, &p.test.group),
        bench_test.eq_opp
    );
    assert_eq!(statistical_parity(&preds, &p.test.group), bench_test.parity);
    assert_eq!(
        consistency_with_neighbors(&p.test_neighbors, &preds),
        bench_test.ynn
    );
}
