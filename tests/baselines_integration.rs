//! Cross-crate behaviour of the baselines against iFair on shared data:
//! the §IV findings (protected-flip invariance, LFR's parity-vs-utility
//! tension) asserted end to end on the synthetic study generator.

use ifair::baselines::{Lfr, LfrConfig, SvdRepresentation};
use ifair::core::{FairnessPairs, IFair, IFairConfig, InitStrategy};
use ifair::data::generators::synthetic::{self, SyntheticConfig, SyntheticVariant};
use ifair::data::Dataset;
use ifair::linalg::Matrix;

fn study(variant: SyntheticVariant) -> Dataset {
    synthetic::generate(&SyntheticConfig {
        n_records: 100,
        variant,
        seed: 33,
    })
}

fn flip_protected(ds: &Dataset) -> (Matrix, Vec<u8>) {
    let mut x = ds.x.clone();
    let a = ds.protected_indices()[0];
    for i in 0..x.rows() {
        let v = x.get(i, a);
        x.set(i, a, 1.0 - v);
    }
    let group = ds.group.iter().map(|&g| 1 - g).collect();
    (x, group)
}

fn mean_drift(a: &Matrix, b: &Matrix) -> f64 {
    let d = a.sub(b).unwrap();
    (0..d.rows())
        .map(|i| d.row(i).iter().map(|v| v * v).sum::<f64>().sqrt())
        .sum::<f64>()
        / d.rows() as f64
}

#[test]
fn ifair_representations_ignore_the_protected_bit() {
    // §IV finding (i): flipping A barely moves iFair representations.
    let ds = study(SyntheticVariant::Random);
    let config = IFairConfig {
        k: 4,
        lambda: 1.0,
        mu: 1.0,
        init: InitStrategy::NearZeroProtected,
        freeze_protected_alpha: true,
        fairness_pairs: FairnessPairs::Exact,
        max_iters: 60,
        n_restarts: 2,
        seed: 9,
        ..Default::default()
    };
    let model = IFair::fit(&ds.x, &ds.protected, &config).unwrap();
    let (flipped, _) = flip_protected(&ds);
    let drift = mean_drift(&model.transform(&ds.x), &model.transform(&flipped));
    assert!(drift < 0.05, "iFair drift {drift} too large");
}

#[test]
fn lfr_representations_depend_on_the_protected_group() {
    // §IV finding (ii): LFR's group-specific machinery makes its output move
    // when the group flips — the contrast that motivates iFair.
    let ds = study(SyntheticVariant::Random);
    let config = LfrConfig {
        k: 4,
        a_x: 1.0,
        a_y: 1.0,
        a_z: 10.0,
        max_iters: 60,
        n_restarts: 2,
        seed: 9,
        ..Default::default()
    };
    let model = Lfr::fit(&ds.x, ds.labels(), &ds.group, &config).unwrap();
    let (flipped, flipped_group) = flip_protected(&ds);
    let ifair_like_drift = mean_drift(
        &model.transform(&ds.x, &ds.group).unwrap(),
        &model.transform(&flipped, &flipped_group).unwrap(),
    );
    assert!(
        ifair_like_drift > 0.01,
        "LFR drift {ifair_like_drift} unexpectedly tiny"
    );
}

#[test]
fn svd_keeps_protected_correlated_structure() {
    // When A is correlated with X1, a full-rank-ish SVD representation keeps
    // that correlation — masking columns is not obtainable by truncation.
    let ds = study(SyntheticVariant::CorrelatedX1);
    let svd = SvdRepresentation::fit(&ds.x, 2).unwrap();
    let repr = svd.transform(&ds.x);
    // Correlation between the first component and the group indicator.
    let comp: Vec<f64> = (0..repr.rows()).map(|i| repr.get(i, 0)).collect();
    let group: Vec<f64> = ds.group.iter().map(|&g| f64::from(g)).collect();
    let corr = correlation(&comp, &group).abs();
    assert!(
        corr > 0.2,
        "leading SVD component lost all group correlation ({corr})"
    );
}

#[test]
fn all_three_variants_share_nonsensitive_features() {
    // The §IV setup promises identical X1, X2, Y across the variants.
    let a = study(SyntheticVariant::Random);
    let b = study(SyntheticVariant::CorrelatedX1);
    let c = study(SyntheticVariant::CorrelatedX2);
    for i in 0..a.n_records() {
        for j in 0..2 {
            assert_eq!(a.x.get(i, j), b.x.get(i, j));
            assert_eq!(a.x.get(i, j), c.x.get(i, j));
        }
    }
    assert_eq!(a.labels(), b.labels());
    assert_eq!(a.labels(), c.labels());
    assert_ne!(b.group, c.group, "variants must differ in group assignment");
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let cov: f64 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|&x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|&y| (y - mb) * (y - mb)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}
