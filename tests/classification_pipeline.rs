//! End-to-end classification pipeline: generate → scale → split → learn
//! representation → train classifier → measure utility and fairness.
//! Mirrors the §V-D experiment at test scale and asserts the paper's
//! directional findings on seeded data.

use ifair::core::{FairnessPairs, IFair, IFairConfig, InitStrategy};
use ifair::data::generators::credit::{self, CreditConfig};
use ifair::data::{train_test_split, Dataset, StandardScaler};
use ifair::linalg::Matrix;
use ifair::metrics::{accuracy, auc, consistency, statistical_parity};
use ifair::models::LogisticRegression;

struct Pipeline {
    train: Dataset,
    test: Dataset,
}

/// The pipeline and the two shared iFair fits are cached across tests: the
/// fits dominate this binary's wall-clock and several tests reuse the same
/// seeded configuration.
fn pipeline() -> &'static Pipeline {
    static PIPELINE: std::sync::OnceLock<Pipeline> = std::sync::OnceLock::new();
    PIPELINE.get_or_init(prepared)
}

fn model_mu1() -> &'static IFair {
    static MODEL: std::sync::OnceLock<IFair> = std::sync::OnceLock::new();
    MODEL.get_or_init(|| quick_ifair(pipeline(), 1.0))
}

fn model_mu10() -> &'static IFair {
    static MODEL: std::sync::OnceLock<IFair> = std::sync::OnceLock::new();
    MODEL.get_or_init(|| quick_ifair(pipeline(), 10.0))
}

fn prepared() -> Pipeline {
    let ds = credit::generate(&CreditConfig {
        n_records: 400,
        seed: 11,
    });
    let (train_idx, test_idx) = train_test_split(ds.n_records(), 0.6, 3);
    let train = ds.subset(&train_idx);
    let test = ds.subset(&test_idx);
    let scaler = StandardScaler::fit(&train.x);
    Pipeline {
        train: train
            .clone()
            .with_features(scaler.transform(&train.x))
            .unwrap(),
        test: test
            .clone()
            .with_features(scaler.transform(&test.x))
            .unwrap(),
    }
}

fn quick_ifair(p: &Pipeline, mu: f64) -> IFair {
    let config = IFairConfig {
        k: 8,
        lambda: 1.0,
        mu,
        init: InitStrategy::NearZeroProtected,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 2000 },
        max_iters: 60,
        n_restarts: 2,
        seed: 5,
        ..Default::default()
    };
    IFair::fit(&p.train.x, &p.train.protected, &config).expect("training succeeds")
}

fn classifier_metrics(p: &Pipeline, train_x: &Matrix, test_x: &Matrix) -> (f64, f64, f64, f64) {
    let clf = LogisticRegression::fit_default(train_x, p.train.labels()).expect("valid inputs");
    let proba = clf.predict_proba(test_x);
    let preds: Vec<f64> = proba
        .iter()
        .map(|&pr| if pr > 0.5 { 1.0 } else { 0.0 })
        .collect();
    (
        accuracy(p.test.labels(), &preds),
        auc(p.test.labels(), &proba),
        consistency(&p.test.masked_x(), &preds, 10),
        statistical_parity(&preds, &p.test.group),
    )
}

#[test]
fn full_pipeline_beats_chance_on_utility() {
    let p = pipeline();
    let (acc, auc_v, _, _) = classifier_metrics(p, &p.train.x, &p.test.x);
    assert!(acc > 0.55, "accuracy {acc} barely above chance");
    assert!(auc_v > 0.55, "AUC {auc_v} barely above chance");
}

#[test]
fn ifair_representation_feeds_a_working_classifier() {
    let p = pipeline();
    let model = model_mu1();
    let (acc, _, ynn, _) =
        classifier_metrics(p, &model.transform(&p.train.x), &model.transform(&p.test.x));
    assert!(acc > 0.5, "accuracy {acc} collapsed");
    assert!(ynn > 0.5, "consistency {ynn} collapsed");
}

#[test]
fn ifair_improves_consistency_over_full_data() {
    let p = pipeline();
    let (_, _, ynn_full, _) = classifier_metrics(p, &p.train.x, &p.test.x);
    let model = model_mu10();
    let (_, _, ynn_fair, _) =
        classifier_metrics(p, &model.transform(&p.train.x), &model.transform(&p.test.x));
    assert!(
        ynn_fair >= ynn_full,
        "iFair yNN {ynn_fair} below full-data yNN {ynn_full}"
    );
}

#[test]
fn stronger_mu_does_not_hurt_consistency() {
    let p = pipeline();
    let weak = quick_ifair(p, 0.1);
    let strong = model_mu10();
    let (_, _, ynn_weak, _) =
        classifier_metrics(p, &weak.transform(&p.train.x), &weak.transform(&p.test.x));
    let (_, _, ynn_strong, _) = classifier_metrics(
        p,
        &strong.transform(&p.train.x),
        &strong.transform(&p.test.x),
    );
    assert!(
        ynn_strong + 0.05 >= ynn_weak,
        "µ=10 yNN {ynn_strong} much worse than µ=0.1 yNN {ynn_weak}"
    );
}

#[test]
fn transform_is_deterministic_across_calls() {
    let p = pipeline();
    let model = model_mu1();
    assert_eq!(model.transform(&p.test.x), model.transform(&p.test.x));
}

#[test]
fn scaler_statistics_transfer_to_test_split() {
    // The pipeline must scale test data with *training* statistics; spot
    // check that training columns are standardized while test columns are
    // merely finite (not re-standardized).
    let p = pipeline();
    let means = p.train.x.col_means();
    let numeric_cols: Vec<usize> = (0..p.train.n_features())
        .filter(|&j| p.train.x.col_stds()[j] > 0.0)
        .collect();
    for &j in numeric_cols.iter().take(5) {
        assert!(means[j].abs() < 1e-9, "train col {j} mean {}", means[j]);
    }
    assert!(p.test.x.as_slice().iter().all(|v| v.is_finite()));
}
