//! Mini-batch vs full-batch convergence: seeded Adam over resampled batches
//! must reach a representation of comparable quality — utility
//! (reconstruction error) and individual fairness (consistency of a simple
//! downstream signal) — to the deterministic L-BFGS fit on the same data.

use ifair::core::{FitStrategy, IFair, IFairConfig};
use ifair::data::generators::large::{LargeScale, LargeScaleConfig};
use ifair::metrics::consistency;

/// A 400-record clustered dataset in the unit box, protected bit leaking
/// into feature 0 (see the generator docs).
fn dataset() -> ifair::data::Dataset {
    LargeScale::new(LargeScaleConfig {
        n_records: 400,
        n_numeric: 8,
        n_clusters: 3,
        seed: 17,
        ..Default::default()
    })
    .materialize(0, 400)
    .unwrap()
}

#[test]
fn minibatch_reaches_full_batch_quality() {
    let ds = dataset();

    let full_config = IFairConfig {
        k: 6,
        n_restarts: 1,
        max_iters: 100,
        ..Default::default()
    };
    let full = IFair::fit(&ds.x, &ds.protected, &full_config).unwrap();

    let mini_config = IFairConfig {
        k: 6,
        n_restarts: 1,
        strategy: FitStrategy::MiniBatch {
            batch_records: 128,
            pairs_per_batch: 1024,
            epochs: 25,
            learning_rate: 0.05,
        },
        ..Default::default()
    };
    let mini = IFair::fit(&ds.x, &ds.protected, &mini_config).unwrap();

    // Utility: the stochastic fit reconstructs nearly as well. Both errors
    // are per-record MSE on the training data.
    let full_err = full.reconstruction_error(&ds.x);
    let mini_err = mini.reconstruction_error(&ds.x);
    assert!(
        full_err.is_finite() && mini_err.is_finite(),
        "errors must be finite"
    );
    assert!(
        mini_err <= full_err * 2.0 + 0.01,
        "mini-batch reconstruction {mini_err} too far above full-batch {full_err}"
    );

    // Individual fairness: labels predicted from the latent cluster should
    // be about as consistent in both learned representations (yNN over the
    // transformed space, k = 10).
    let labels = ds.labels();
    let cons_full = consistency(&full.transform(&ds.x), labels, 10);
    let cons_mini = consistency(&mini.transform(&ds.x), labels, 10);
    assert!(
        (cons_full - cons_mini).abs() <= 0.05,
        "consistency gap too large: full {cons_full} vs mini {cons_mini}"
    );
}

#[test]
fn minibatch_model_persists_and_round_trips() {
    // The strategy field travels with the model artifact.
    let ds = dataset();
    let config = IFairConfig {
        k: 3,
        n_restarts: 1,
        strategy: FitStrategy::MiniBatch {
            batch_records: 64,
            pairs_per_batch: 256,
            epochs: 2,
            learning_rate: 0.05,
        },
        ..Default::default()
    };
    let model = IFair::fit(&ds.x, &ds.protected, &config).unwrap();
    assert_eq!(model.report().n_pairs_requested, Some(256));
    let json = model.to_json().unwrap();
    let back = IFair::from_json(&json).unwrap();
    assert_eq!(back.config().strategy, config.strategy);
    assert_eq!(model.transform(&ds.x), back.transform(&ds.x));
}
