//! Multiple protected attributes — a headline iFair capability the paper
//! contrasts against LFR ("it supports multiple sensitive attributes where
//! the 'protected values' are known only at run-time"). The model receives
//! only column flags, never group labels, so any number of protected
//! columns — and any later choice of which value is "protected" — works
//! with a single trained representation.

use ifair::core::{FairnessPairs, IFair, IFairConfig, InitStrategy};
use ifair::linalg::Matrix;
use ifair::metrics::statistical_parity;
use ifair::models::LogisticRegression;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Records with two qualification columns and two protected columns
/// (gender, nationality), both correlated with a qualification proxy.
fn two_protected_data(n: usize, seed: u64) -> (Matrix, Vec<bool>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let skill: f64 = rng.gen_range(0.0..1.0);
        let gender = f64::from(rng.gen_bool(0.5));
        let nationality = f64::from(rng.gen_bool(0.3));
        // A proxy column leaks a bit of both protected attributes.
        let proxy = 0.5 * skill + 0.25 * gender + 0.25 * nationality;
        rows.push(vec![skill, proxy, gender, nationality]);
        y.push(f64::from(skill > 0.5));
    }
    (
        Matrix::from_rows(rows).unwrap(),
        vec![false, false, true, true],
        y,
    )
}

fn quick_config() -> IFairConfig {
    IFairConfig {
        k: 6,
        init: InitStrategy::NearZeroProtected,
        freeze_protected_alpha: true,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 2000 },
        max_iters: 60,
        n_restarts: 2,
        seed: 4,
        ..Default::default()
    }
}

#[test]
fn trains_with_two_protected_columns() {
    let (x, protected, _) = two_protected_data(120, 8);
    let model = IFair::fit(&x, &protected, &quick_config()).unwrap();
    assert_eq!(model.protected(), &[false, false, true, true]);
    // Both protected weights pinned near zero.
    assert!(model.alpha()[2] < 1e-3);
    assert!(model.alpha()[3] < 1e-3);
}

#[test]
fn representation_invariant_to_either_protected_attribute() {
    let (x, protected, _) = two_protected_data(120, 8);
    let model = IFair::fit(&x, &protected, &quick_config()).unwrap();
    let base = model.transform(&x);
    for col in [2usize, 3] {
        let mut flipped = x.clone();
        for i in 0..flipped.rows() {
            let v = flipped.get(i, col);
            flipped.set(i, col, 1.0 - v);
        }
        let drift = base.sub(&model.transform(&flipped)).unwrap().max_abs();
        assert!(drift < 1e-2, "flipping column {col} moved repr by {drift}");
    }
}

#[test]
fn protected_group_choice_deferred_to_decision_time() {
    // One representation, two *different* downstream fairness audits: the
    // protected group can be defined by either attribute after training.
    let (x, protected, y) = two_protected_data(200, 8);
    let model = IFair::fit(&x, &protected, &quick_config()).unwrap();
    let repr = model.transform(&x);
    let clf = LogisticRegression::fit_default(&repr, &y).expect("valid inputs");
    let preds = clf.predict(&repr);

    let gender_group: Vec<u8> = (0..x.rows()).map(|i| x.get(i, 2) as u8).collect();
    let nationality_group: Vec<u8> = (0..x.rows()).map(|i| x.get(i, 3) as u8).collect();
    let parity_gender = statistical_parity(&preds, &gender_group);
    let parity_nationality = statistical_parity(&preds, &nationality_group);
    // Both audits can be computed post hoc and neither group is strongly
    // disadvantaged by a classifier on the fair representation.
    assert!(parity_gender > 0.8, "gender parity {parity_gender}");
    assert!(
        parity_nationality > 0.8,
        "nationality parity {parity_nationality}"
    );
}
