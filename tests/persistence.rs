//! Model and dataset persistence across crate boundaries: JSON round-trips
//! must reproduce bit-identical behaviour (training is expensive; downstream
//! users serialize the representation model, not the data).

use ifair::core::{FairnessPairs, IFair, IFairConfig};
use ifair::data::generators::credit::{self, CreditConfig};
use ifair::data::Dataset;
use ifair::linalg::Matrix;

fn trained_model() -> (IFair, Dataset) {
    let ds = credit::generate(&CreditConfig {
        n_records: 150,
        seed: 2,
    });
    let config = IFairConfig {
        k: 5,
        max_iters: 40,
        n_restarts: 1,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 1000 },
        seed: 2,
        ..Default::default()
    };
    let model = IFair::fit(&ds.x, &ds.protected, &config).unwrap();
    (model, ds)
}

#[test]
fn model_json_roundtrip_is_bit_identical() {
    let (model, ds) = trained_model();
    let restored = IFair::from_json(&model.to_json().unwrap()).unwrap();
    assert_eq!(model.transform(&ds.x), restored.transform(&ds.x));
    assert_eq!(model.alpha(), restored.alpha());
    assert_eq!(model.prototypes(), restored.prototypes());
    assert_eq!(model.report().best().loss, restored.report().best().loss);
}

#[test]
fn model_survives_file_persistence() {
    let (model, ds) = trained_model();
    let dir = std::env::temp_dir().join("ifair-persistence-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    std::fs::write(&path, model.to_json().unwrap()).unwrap();
    let restored = IFair::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(model.transform(&ds.x), restored.transform(&ds.x));
    std::fs::remove_file(&path).ok();
}

#[test]
fn dataset_serde_roundtrip() {
    let (_, ds) = trained_model();
    let json = serde_json::to_string(&ds).unwrap();
    let back: Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(back.x, ds.x);
    assert_eq!(back.protected, ds.protected);
    assert_eq!(back.group, ds.group);
    assert_eq!(back.labels(), ds.labels());
}

#[test]
fn matrix_serde_roundtrip_exact_floats() {
    // Depends on serde_json's float_roundtrip feature; guard it explicitly
    // because model persistence silently degrades without it.
    let m = Matrix::from_rows(vec![
        vec![0.1 + 0.2, 1e-308, -0.0],
        vec![f64::MAX, f64::MIN_POSITIVE, 0.123_456_789_012_345_68],
    ])
    .unwrap();
    let back: Matrix = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
    assert_eq!(m, back);
}

#[test]
fn corrupted_model_json_is_rejected() {
    let (model, _) = trained_model();
    let json = model.to_json().unwrap();
    assert!(IFair::from_json(&json[..json.len() / 2]).is_err());
    assert!(IFair::from_json("{}").is_err());
    assert!(IFair::from_json("").is_err());
}

#[test]
fn model_artifacts_carry_a_schema_version() {
    use ifair::api::{FitError, SCHEMA_VERSION};
    let (model, _) = trained_model();
    let json = model.to_json().unwrap();
    assert!(
        json.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")),
        "artifact must declare its schema version"
    );
    assert!(json.contains("\"kind\":\"ifair-model\""));

    // A bumped/unknown version fails with a clear typed error, not garbage.
    let bumped = json.replacen(
        &format!("\"schema_version\":{SCHEMA_VERSION}"),
        "\"schema_version\":42",
        1,
    );
    let err = IFair::from_json(&bumped).unwrap_err();
    assert!(matches!(
        err,
        FitError::SchemaVersion {
            found: 42,
            supported: SCHEMA_VERSION
        }
    ));
    let msg = err.to_string();
    assert!(
        msg.contains("42") && msg.contains("schema version"),
        "{msg}"
    );

    // Legacy unversioned payloads are rejected with a pointer to the cause.
    let err = IFair::from_json("{\"prototypes\":[]}").unwrap_err();
    assert!(err.to_string().contains("schema_version"), "{err}");
}
