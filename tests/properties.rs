//! Property-based tests over the public API: invariants that must hold for
//! *arbitrary* (not hand-picked) data, via proptest.

use ifair::baselines::{fail_probability, minimum_protected_table, rerank, FairConfig};
use ifair::core::{FairnessPairs, IFair, IFairConfig};
use ifair::linalg::Matrix;
use ifair::metrics::{kendall_tau, ranking_from_scores, statistical_parity};
use proptest::prelude::*;

/// Small random data matrices with one protected trailing column.
fn data_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(-2.0..2.0f64, 4),
        6..20,
    )
}

fn quick_config(seed: u64) -> IFairConfig {
    IFairConfig {
        k: 3,
        max_iters: 15,
        n_restarts: 1,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 40 },
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ifair_responsibilities_always_form_distributions(
        rows in data_strategy(), seed in 0u64..1000
    ) {
        let x = Matrix::from_rows(rows).unwrap();
        let protected = vec![false, false, false, true];
        let model = IFair::fit(&x, &protected, &quick_config(seed)).unwrap();
        let (xt, u) = model.transform_with_probabilities(&x);
        for i in 0..u.rows() {
            let s: f64 = u.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9, "row {} sums to {}", i, s);
            prop_assert!(u.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        prop_assert!(xt.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ifair_transform_stays_in_prototype_hull(
        rows in data_strategy(), seed in 0u64..1000
    ) {
        // x̃ is a convex combination of prototypes, so every coordinate lies
        // within the prototypes' coordinate-wise range.
        let x = Matrix::from_rows(rows).unwrap();
        let protected = vec![false, false, false, true];
        let model = IFair::fit(&x, &protected, &quick_config(seed)).unwrap();
        let xt = model.transform(&x);
        let v = model.prototypes();
        for j in 0..xt.cols() {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for k in 0..v.rows() {
                lo = lo.min(v.get(k, j));
                hi = hi.max(v.get(k, j));
            }
            for i in 0..xt.rows() {
                prop_assert!(
                    xt.get(i, j) >= lo - 1e-9 && xt.get(i, j) <= hi + 1e-9,
                    "({}, {}) = {} outside hull [{}, {}]",
                    i, j, xt.get(i, j), lo, hi
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mtable_monotone_and_feasible(
        k in 1usize..60,
        p in 0.05f64..0.95,
        alpha in 0.01f64..0.3,
    ) {
        let t = minimum_protected_table(k, p, alpha);
        prop_assert_eq!(t.len(), k);
        // Monotone non-decreasing, never requiring more than the prefix length.
        for (i, w) in t.windows(2).enumerate() {
            prop_assert!(w[0] <= w[1]);
            prop_assert!(w[1] <= i + 2);
        }
        // A fair process fails the corrected table with probability <= alpha
        // after adjustment; with the raw table the failure probability is
        // finite and in [0, 1].
        let f = fail_probability(&t, p);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn rerank_emits_each_candidate_once(
        scores in proptest::collection::vec(0.0f64..1.0, 5..40),
        p in 0.1f64..0.9,
        bits in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let protected: Vec<u8> = bits.iter().take(scores.len()).map(|&b| b as u8).collect();
        let k = scores.len();
        let result = rerank(&scores, &protected, k, &FairConfig {
            p,
            alpha: 0.1,
            adjust_alpha: false,
        });
        let mut seen = result.order.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), result.order.len(), "duplicate candidates");
        prop_assert_eq!(result.order.len(), k);
        prop_assert_eq!(result.fair_scores.len(), k);
        prop_assert!(result.fair_scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn kendall_tau_is_antisymmetric_and_bounded(
        scores in proptest::collection::vec(-10.0f64..10.0, 3..30),
    ) {
        let reversed: Vec<f64> = scores.iter().map(|&s| -s).collect();
        let t_fwd = kendall_tau(&scores, &scores);
        let t_rev = kendall_tau(&scores, &reversed);
        prop_assert!((-1.0..=1.0).contains(&t_fwd));
        prop_assert!((t_fwd + t_rev).abs() < 1e-9, "τ(x,x) = -τ(x,-x) violated");
    }

    #[test]
    fn ranking_from_scores_is_a_permutation_sorted_desc(
        scores in proptest::collection::vec(-5.0f64..5.0, 1..50),
    ) {
        let order = ranking_from_scores(&scores);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..scores.len()).collect::<Vec<_>>());
        for w in order.windows(2) {
            prop_assert!(scores[w[0]] >= scores[w[1]]);
        }
    }

    #[test]
    fn statistical_parity_bounded_and_symmetric(
        preds in proptest::collection::vec(0.0f64..1.0, 4..40),
        bits in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let group: Vec<u8> = bits.iter().take(preds.len()).map(|&b| b as u8).collect();
        let parity = statistical_parity(&preds, &group);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&parity));
        // Swapping group labels leaves the absolute gap unchanged.
        let swapped: Vec<u8> = group.iter().map(|&g| 1 - g).collect();
        prop_assert!((parity - statistical_parity(&preds, &swapped)).abs() < 1e-12);
    }
}
