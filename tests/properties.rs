//! Property-style tests over the public API: invariants that must hold for
//! *randomized* (not hand-picked) data. The offline toolchain has no
//! proptest, so each property is exercised over a battery of seeded random
//! cases — deterministic, yet far broader than fixed fixtures.

use ifair::baselines::{fail_probability, minimum_protected_table, rerank, FairConfig};
use ifair::core::{FairnessPairs, IFair, IFairConfig};
use ifair::linalg::Matrix;
use ifair::metrics::{kendall_tau, ranking_from_scores, statistical_parity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Small random data matrix with 4 columns, 6–19 rows, values in (-2, 2).
fn random_rows(rng: &mut StdRng) -> Vec<Vec<f64>> {
    let m = rng.gen_range(6..20usize);
    (0..m)
        .map(|_| (0..4).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect()
}

fn quick_config(seed: u64) -> IFairConfig {
    IFairConfig {
        k: 3,
        max_iters: 15,
        n_restarts: 1,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 40 },
        seed,
        ..Default::default()
    }
}

#[test]
fn ifair_responsibilities_always_form_distributions() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    for case in 0..8u64 {
        let x = Matrix::from_rows(random_rows(&mut rng)).unwrap();
        let protected = vec![false, false, false, true];
        let model = IFair::fit(&x, &protected, &quick_config(case)).unwrap();
        let (xt, u) = model.transform_with_probabilities(&x);
        for i in 0..u.rows() {
            let s: f64 = u.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "case {case}: row {i} sums to {s}");
            assert!(u.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        assert!(xt.as_slice().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn ifair_transform_stays_in_prototype_hull() {
    // x̃ is a convex combination of prototypes, so every coordinate lies
    // within the prototypes' coordinate-wise range.
    let mut rng = StdRng::seed_from_u64(0x5eed_0002);
    for case in 0..8u64 {
        let x = Matrix::from_rows(random_rows(&mut rng)).unwrap();
        let protected = vec![false, false, false, true];
        let model = IFair::fit(&x, &protected, &quick_config(100 + case)).unwrap();
        let xt = model.transform(&x);
        let v = model.prototypes();
        for j in 0..xt.cols() {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for k in 0..v.rows() {
                lo = lo.min(v.get(k, j));
                hi = hi.max(v.get(k, j));
            }
            for i in 0..xt.rows() {
                assert!(
                    xt.get(i, j) >= lo - 1e-9 && xt.get(i, j) <= hi + 1e-9,
                    "case {case}: ({}, {}) = {} outside hull [{}, {}]",
                    i,
                    j,
                    xt.get(i, j),
                    lo,
                    hi
                );
            }
        }
    }
}

#[test]
fn mtable_monotone_and_feasible() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0003);
    for _ in 0..64 {
        let k = rng.gen_range(1..60usize);
        let p = rng.gen_range(0.05..0.95);
        let alpha = rng.gen_range(0.01..0.3);
        let t = minimum_protected_table(k, p, alpha);
        assert_eq!(t.len(), k);
        // Monotone non-decreasing, never requiring more than the prefix length.
        for (i, w) in t.windows(2).enumerate() {
            assert!(w[0] <= w[1], "k={k} p={p} alpha={alpha}");
            assert!(w[1] <= i + 2, "k={k} p={p} alpha={alpha}");
        }
        // A fair process fails the table with probability in [0, 1].
        let f = fail_probability(&t, p);
        assert!((0.0..=1.0).contains(&f), "k={k} p={p} alpha={alpha}: {f}");
    }
}

#[test]
fn rerank_emits_each_candidate_once() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0004);
    for _ in 0..64 {
        let n = rng.gen_range(5..40usize);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let protected: Vec<u8> = (0..n).map(|_| u8::from(rng.gen_bool(0.5))).collect();
        let p = rng.gen_range(0.1..0.9);
        let result = rerank(
            &scores,
            &protected,
            n,
            &FairConfig {
                p,
                alpha: 0.1,
                adjust_alpha: false,
            },
        );
        let mut seen = result.order.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), result.order.len(), "duplicate candidates");
        assert_eq!(result.order.len(), n);
        assert_eq!(result.fair_scores.len(), n);
        assert!(result.fair_scores.iter().all(|s| s.is_finite()));
    }
}

#[test]
fn kendall_tau_is_antisymmetric_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0005);
    for _ in 0..64 {
        let n = rng.gen_range(3..30usize);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let reversed: Vec<f64> = scores.iter().map(|&s| -s).collect();
        let t_fwd = kendall_tau(&scores, &scores);
        let t_rev = kendall_tau(&scores, &reversed);
        assert!((-1.0..=1.0).contains(&t_fwd));
        assert!((t_fwd + t_rev).abs() < 1e-9, "τ(x,x) = -τ(x,-x) violated");
    }
}

#[test]
fn ranking_from_scores_is_a_permutation_sorted_desc() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0006);
    for _ in 0..64 {
        let n = rng.gen_range(1..50usize);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let order = ranking_from_scores(&scores);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..scores.len()).collect::<Vec<_>>());
        for w in order.windows(2) {
            assert!(scores[w[0]] >= scores[w[1]]);
        }
    }
}

#[test]
fn statistical_parity_bounded_and_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0007);
    for _ in 0..64 {
        let n = rng.gen_range(4..40usize);
        let preds: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let group: Vec<u8> = (0..n).map(|_| u8::from(rng.gen_bool(0.5))).collect();
        let parity = statistical_parity(&preds, &group);
        assert!((0.0..=1.0 + 1e-12).contains(&parity));
        // Swapping group labels leaves the absolute gap unchanged.
        let swapped: Vec<u8> = group.iter().map(|&g| 1 - g).collect();
        assert!((parity - statistical_parity(&preds, &swapped)).abs() < 1e-12);
    }
}

#[test]
fn certified_delta_monotone_in_eps_and_anchored_at_zero() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0008);
    for case in 0..4u64 {
        let x = Matrix::from_rows(random_rows(&mut rng)).unwrap();
        let protected = vec![false, false, false, true];
        let model = IFair::fit(&x, &protected, &quick_config(40 + case)).unwrap();
        // Monotonicity: for a fixed record, growing the radius can only
        // grow (or keep) the certified displacement bound — the ε-boxes
        // are nested, so any sound bound for the larger box also covers
        // the smaller one.
        let grid = [0.0, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 2.0];
        let mut prev: Option<Vec<f64>> = None;
        for &eps in &grid {
            let deltas: Vec<f64> = model
                .certify_rows(&x, eps, None)
                .unwrap()
                .into_iter()
                .map(|c| c.delta)
                .collect();
            if let Some(prev) = &prev {
                for (i, (small, big)) in prev.iter().zip(&deltas).enumerate() {
                    assert!(
                        big >= small,
                        "case {case}: row {i} delta shrank from {small} to {big} at eps {eps}"
                    );
                }
            }
            prev = Some(deltas);
        }
        // Anchor: at ε = 0 the box is a single point, so the certificate
        // must agree with a plain transform of that point — the image is
        // within δ of itself, and δ itself is pure rounding slack.
        let images = model.transform_on(&x, None);
        for (i, cert) in model
            .certify_rows(&x, 0.0, None)
            .unwrap()
            .iter()
            .enumerate()
        {
            assert!(
                cert.delta < 1e-9,
                "case {case}: row {i} eps-0 delta {}",
                cert.delta
            );
            assert!(images.row(i).iter().all(|v| v.is_finite()));
        }
    }
}
