//! End-to-end learning-to-rank pipeline (§V-E at test scale): deserved
//! scores from the Xing simulator, ridge-regression ranking on different
//! representations, FA\*IR post-processing, and the paper's directional
//! claims asserted on seeded data.

use ifair::baselines::{minimum_protected_table, rerank, satisfies, FairConfig};
use ifair::core::{FairnessPairs, IFair, IFairConfig, InitStrategy};
use ifair::data::generators::xing::{self, XingConfig};
use ifair::data::{RankingDataset, StandardScaler};
use ifair::metrics::{consistency, kendall_tau, protected_share_top_k, ranking_from_scores};
use ifair::models::RidgeRegression;

/// The scaled ranking dataset is cached across this binary's tests.
fn prepared() -> &'static RankingDataset {
    static DATASET: std::sync::OnceLock<RankingDataset> = std::sync::OnceLock::new();
    DATASET.get_or_init(|| {
        let rds = xing::generate(&XingConfig {
            n_queries: 10,
            seed: 21,
        });
        let (_, x) = StandardScaler::fit_transform(&rds.data.x);
        let data = rds.data.with_features(x).unwrap();
        RankingDataset::new(data, rds.queries).unwrap()
    })
}

fn mean_query_kt(rds: &RankingDataset, predicted: &[f64]) -> f64 {
    let scores = rds.data.labels();
    rds.queries
        .iter()
        .map(|q| {
            let pred: Vec<f64> = q.indices.iter().map(|&i| predicted[i]).collect();
            let truth: Vec<f64> = q.indices.iter().map(|&i| scores[i]).collect();
            kendall_tau(&pred, &truth)
        })
        .sum::<f64>()
        / rds.queries.len() as f64
}

fn mean_query_ynn(rds: &RankingDataset, predicted: &[f64]) -> f64 {
    let masked = rds.data.masked_x();
    rds.queries
        .iter()
        .map(|q| {
            let pred: Vec<f64> = q.indices.iter().map(|&i| predicted[i]).collect();
            consistency(&masked.select_rows(&q.indices), &pred, 10)
        })
        .sum::<f64>()
        / rds.queries.len() as f64
}

#[test]
fn linear_regression_on_full_data_recovers_deserved_ranking() {
    // The deserved score is linear in the features, so the regression must
    // reproduce it almost exactly — the paper's Table V MAP = KT = 1.00.
    let rds = prepared();
    let model = RidgeRegression::fit(&rds.data.x, rds.data.labels(), 1e-6).unwrap();
    let kt = mean_query_kt(rds, &model.predict(&rds.data.x));
    assert!(kt > 0.95, "KT {kt}");
}

#[test]
fn ifair_scores_are_more_consistent_than_masked_scores() {
    let rds = prepared();
    let masked = rds.data.masked_x();
    let masked_model = RidgeRegression::fit(&masked, rds.data.labels(), 1e-6).unwrap();
    let ynn_masked = mean_query_ynn(rds, &masked_model.predict(&masked));

    let config = IFairConfig {
        k: 8,
        lambda: 0.1,
        mu: 0.1,
        init: InitStrategy::NearZeroProtected,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 3000 },
        max_iters: 60,
        n_restarts: 2,
        seed: 13,
        ..Default::default()
    };
    let model = IFair::fit(&rds.data.x, &rds.data.protected, &config).unwrap();
    let repr = model.transform(&rds.data.x);
    let reg = RidgeRegression::fit(&repr, rds.data.labels(), 1e-6).unwrap();
    let ynn_fair = mean_query_ynn(rds, &reg.predict(&repr));
    assert!(
        ynn_fair > ynn_masked,
        "iFair yNN {ynn_fair} <= masked yNN {ynn_masked}"
    );
}

#[test]
fn fair_rerank_satisfies_group_constraint_on_every_query() {
    let rds = prepared();
    let scores = rds.data.labels();
    let config = FairConfig {
        p: 0.5,
        alpha: 0.1,
        adjust_alpha: false,
    };
    let mtable_for = |k: usize| minimum_protected_table(k, config.p, config.alpha);
    for q in &rds.queries {
        let pred: Vec<f64> = q.indices.iter().map(|&i| scores[i]).collect();
        let group: Vec<u8> = q.indices.iter().map(|&i| rds.data.group[i]).collect();
        let fair = rerank(&pred, &group, q.indices.len(), &config);
        if fair.feasible {
            let flags: Vec<bool> = fair.order.iter().map(|&i| group[i] == 1).collect();
            assert!(
                satisfies(&flags, &mtable_for(fair.order.len())),
                "query {} violates ranked group fairness",
                q.id
            );
        }
    }
}

#[test]
fn fair_rerank_with_high_p_lifts_protected_share() {
    let rds = prepared();
    let scores = rds.data.labels();
    let mut base_share = 0.0;
    let mut fair_share = 0.0;
    for q in &rds.queries {
        let pred: Vec<f64> = q.indices.iter().map(|&i| scores[i]).collect();
        let group: Vec<u8> = q.indices.iter().map(|&i| rds.data.group[i]).collect();
        base_share += protected_share_top_k(&ranking_from_scores(&pred), &group, 10);
        let fair = rerank(
            &pred,
            &group,
            q.indices.len(),
            &FairConfig {
                p: 0.9,
                alpha: 0.1,
                adjust_alpha: false,
            },
        );
        fair_share += protected_share_top_k(&fair.order, &group, 10);
    }
    assert!(
        fair_share > base_share,
        "re-ranking did not raise protected share ({fair_share} vs {base_share})"
    );
}

#[test]
fn representation_reuse_across_queries() {
    // Application-agnostic property: one iFair model serves every query —
    // transforming the concatenation equals transforming per query.
    let rds = prepared();
    let config = IFairConfig {
        k: 4,
        max_iters: 30,
        n_restarts: 1,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 500 },
        seed: 3,
        ..Default::default()
    };
    let model = IFair::fit(&rds.data.x, &rds.data.protected, &config).unwrap();
    let all = model.transform(&rds.data.x);
    for q in rds.queries.iter().take(3) {
        let per_query = model.transform(&rds.data.x.select_rows(&q.indices));
        for (row, &i) in q.indices.iter().enumerate() {
            assert_eq!(per_query.row(row), all.row(i));
        }
    }
}
